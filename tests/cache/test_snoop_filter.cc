/**
 * @file
 * The snoop-filter directory must be invisible: a filtered
 * CoherenceDomain and a broadcast-mode reference domain replaying the
 * same trace must produce byte-identical AccessResult streams and
 * statistics (the filter changes who we probe, never what the
 * simulation observes). On top of that, the directory must stay a
 * superset of actual private-hierarchy presence at all times — a
 * stale-absent bit would suppress a required snoop.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "stramash/cache/coherence.hh"
#include "stramash/cache/snoop_filter.hh"
#include "stramash/common/rng.hh"
#include "stramash/common/units.hh"

using namespace stramash;

namespace
{

/** Tiny hierarchy so random traces force heavy eviction traffic. */
HierarchyGeometry
tinyGeom()
{
    HierarchyGeometry g;
    g.l1i = {1_KiB, 2};
    g.l1d = {1_KiB, 2};
    g.l2 = {4_KiB, 4};
    g.l3 = {16_KiB, 4};
    return g;
}

struct Op
{
    NodeId node;
    AccessType type;
    Addr addr;
};

std::vector<Op>
randomTrace(std::uint64_t seed, unsigned numNodes, std::size_t count,
            Addr span)
{
    Rng rng(seed);
    std::vector<Op> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Op op;
        op.node = rng.below(numNodes);
        double roll = 0.01 * (rng.below(100));
        op.type = roll < 0.3
                      ? AccessType::Store
                      : (roll < 0.35 ? AccessType::InstFetch
                                     : AccessType::Load);
        // Mix a hot shared region with a wider sweep so the trace
        // has true sharing, upgrades, and eviction churn.
        Addr base = 0x10000000;
        op.addr = rng.chance(0.5) ? base + rng.below(8_KiB)
                                  : base + rng.below(span);
        ops.push_back(op);
    }
    return ops;
}

bool
sameResult(const AccessResult &a, const AccessResult &b)
{
    return a.latency == b.latency && a.level == b.level &&
           a.memClass == b.memClass &&
           a.snoopInvalidate == b.snoopInvalidate &&
           a.snoopData == b.snoopData;
}

class Differential
    : public testing::TestWithParam<std::tuple<std::uint64_t, bool>>
{
};

} // namespace

TEST(SnoopFilterUnit, AddRemoveSharers)
{
    SnoopFilter f;
    EXPECT_EQ(f.sharers(0x1000), 0u);
    f.addSharer(0x1000, 0);
    f.addSharer(0x1000, 3);
    EXPECT_EQ(f.sharers(0x1000), 0b1001u);
    f.removeSharer(0x1000, 0);
    EXPECT_EQ(f.sharers(0x1000), 0b1000u);
    // Removing an absent node or line is a harmless no-op.
    f.removeSharer(0x1000, 7);
    f.removeSharer(0x2000, 0);
    EXPECT_EQ(f.sharers(0x1000), 0b1000u);
}

TEST(SnoopFilterUnit, LineZeroIsAValidKey)
{
    SnoopFilter f;
    f.addSharer(0, 1);
    EXPECT_EQ(f.sharers(0), 0b10u);
}

TEST(SnoopFilterUnit, ClearForgetsEverything)
{
    SnoopFilter f;
    for (Addr a = 0; a < 64 * 100; a += 64)
        f.addSharer(a, 0);
    EXPECT_EQ(f.entryCount(), 100u);
    f.clear();
    EXPECT_EQ(f.entryCount(), 0u);
    EXPECT_EQ(f.sharers(64), 0u);
}

TEST(SnoopFilterUnit, DistinctSlotsTrackExactMasks)
{
    // Inside one table period (default 2^21 slots) every line has
    // its own counter, so presence is exact, not merely a superset.
    SnoopFilter f;
    constexpr std::size_t lines = 10000;
    ASSERT_GE(f.capacity(), lines);
    for (std::size_t i = 0; i < lines; ++i)
        f.addSharer(Addr{i} * 64, static_cast<NodeId>(i % 4));
    for (std::size_t i = 0; i < lines; ++i) {
        EXPECT_EQ(f.sharers(Addr{i} * 64),
                  std::uint32_t{1} << (i % 4))
            << "line " << i;
    }
}

TEST(SnoopFilterUnit, PairedRemovesLeaveNoResidue)
{
    // A tiny 16-slot table makes every line alias; as long as every
    // addSharer is paired with a removeSharer the counters must all
    // return to zero — no residue to charge phantom probes later.
    SnoopFilter f(16);
    for (std::size_t i = 0; i < 1000; ++i) {
        f.addSharer(Addr{i} * 64, 0);
        f.removeSharer(Addr{i} * 64, 0);
    }
    EXPECT_EQ(f.entryCount(), 0u);
    f.addSharer(0x12340, 2);
    EXPECT_EQ(f.sharers(0x12340), 0b100u);
}

TEST(SnoopFilterUnit, AliasedLinesStayConservative)
{
    // 16 slots: lines 16 * 64 bytes apart share a counter. Aliasing
    // must only ever widen the answer (false positive), never lose a
    // real sharer when the alias is removed.
    SnoopFilter f(16);
    f.addSharer(0, 0);
    f.addSharer(16 * 64, 1); // aliases slot 0
    EXPECT_EQ(f.sharers(0), 0b11u);
    EXPECT_EQ(f.sharers(16 * 64), 0b11u);
    f.removeSharer(16 * 64, 1);
    EXPECT_EQ(f.sharers(0), 0b01u);
}

TEST(SnoopFilterUnit, SaturatedCounterStaysConservative)
{
    // Once a counter saturates the count is no longer exact, so
    // removes must not decrement it — a stale-present bit costs a
    // probe; losing a real sharer would corrupt the simulation.
    SnoopFilter f(16);
    for (int i = 0; i < 300; ++i)
        f.addSharer(0x4000, 0);
    for (int i = 0; i < 300; ++i)
        f.removeSharer(0x4000, 0);
    EXPECT_EQ(f.sharers(0x4000), 0b01u);
    f.clear(); // only clear() may drop a saturated counter
    EXPECT_EQ(f.sharers(0x4000), 0u);
}

TEST(SnoopFilterUnit, RejectsOutOfRangeNode)
{
    SnoopFilter f;
    EXPECT_DEATH(f.addSharer(0x1000, SnoopFilter::maxNodes),
                 "at most");
}

/**
 * The differential harness (ruby_ref comparison pattern): replay one
 * random multi-node trace through a filtered domain and a
 * broadcast-mode domain; every AccessResult and every final counter
 * must match exactly, across memory models and with/without the
 * shared LLC.
 */
TEST_P(Differential, FilterMatchesBroadcastExactly)
{
    auto [seed, sharedLlc] = GetParam();

    auto build = [&](bool broadcast, PhysMap &map,
                     std::unique_ptr<CoherenceDomain> &out) {
        CacheGeometry shared{16_KiB, 4};
        out = std::make_unique<CoherenceDomain>(
            map, SnoopCosts{}, sharedLlc ? &shared : nullptr);
        out->setBroadcastMode(broadcast);
        out->addNode(0, tinyGeom(),
                     latencyProfile(CoreModel::XeonGold));
        out->addNode(1, tinyGeom(),
                     latencyProfile(CoreModel::ThunderX2));
    };

    for (MemoryModel model :
         {MemoryModel::Separated, MemoryModel::FullyShared}) {
        PhysMap map = PhysMap::paperDefault(model);
        std::unique_ptr<CoherenceDomain> filtered, broadcast;
        build(false, map, filtered);
        build(true, map, broadcast);
        ASSERT_FALSE(filtered->broadcastMode());
        ASSERT_TRUE(broadcast->broadcastMode());

        // Spread the trace over both nodes' memory (paper layout:
        // node 1's DRAM starts at 2 GiB).
        auto ops = randomTrace(seed, 2, 20000, 64_KiB);
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const Op &op = ops[i];
            Addr addr = op.addr + (i % 2 ? 2_GiB : 0);
            AccessResult a =
                filtered->accessLine(op.node, op.type, addr);
            AccessResult b =
                broadcast->accessLine(op.node, op.type, addr);
            ASSERT_TRUE(sameResult(a, b))
                << "divergence at op " << i << " model "
                << memoryModelName(model);
        }

        // Mid-trace flush, then more traffic: directory reset must
        // not desynchronise the two modes.
        filtered->flushAll();
        broadcast->flushAll();
        auto ops2 = randomTrace(seed + 1, 2, 5000, 64_KiB);
        for (std::size_t i = 0; i < ops2.size(); ++i) {
            const Op &op = ops2[i];
            AccessResult a =
                filtered->accessLine(op.node, op.type, op.addr);
            AccessResult b =
                broadcast->accessLine(op.node, op.type, op.addr);
            ASSERT_TRUE(sameResult(a, b))
                << "post-flush divergence at op " << i;
        }

        for (NodeId n = 0; n < 2; ++n) {
            const auto &fc = filtered->nodeStats(n).counters();
            const auto &bc = broadcast->nodeStats(n).counters();
            ASSERT_EQ(fc.size(), bc.size());
            for (const auto &[name, counter] : fc) {
                EXPECT_EQ(counter.value(), bc.at(name).value())
                    << "counter " << name << " node " << n
                    << " model " << memoryModelName(model);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, Differential,
    testing::Combine(testing::Values(7u, 42u, 1234u),
                     testing::Bool()));

namespace
{

/** holds() across every node must imply a presence bit. */
void
expectSuperset(CoherenceDomain &d, unsigned numNodes,
               const std::vector<Addr> &lines)
{
    for (Addr line : lines) {
        std::uint32_t mask = d.snoopFilter().sharers(line);
        for (NodeId n = 0; n < numNodes; ++n) {
            if (d.hierarchy(n).holds(line)) {
                ASSERT_TRUE(mask & (1u << n))
                    << "stale-absent bit for node " << n << " line 0x"
                    << std::hex << line;
            }
        }
    }
}

} // namespace

/**
 * Directory maintenance under LLC back-invalidation: evicting a line
 * from the shared LLC back-invalidates every node's private copy and
 * must clear their presence bits, while never clearing a bit some
 * node still depends on.
 */
TEST(SnoopFilterDirectory, SharedLlcBackInvalidationClearsBits)
{
    PhysMap map = PhysMap::paperDefault(MemoryModel::FullyShared);
    // 4 KiB 2-way shared LLC: 32 sets; lines 2 KiB apart collide.
    CacheGeometry shared{4_KiB, 2};
    CoherenceDomain d(map, SnoopCosts{}, &shared);
    d.addNode(0, tinyGeom(), latencyProfile(CoreModel::XeonGold));
    d.addNode(1, tinyGeom(), latencyProfile(CoreModel::ThunderX2));

    Addr a = 0x100000;
    d.accessLine(0, AccessType::Load, a);
    // Node 1 picks the line up via a shared-LLC hit (promotion, not
    // fill) — the directory must still record it as a sharer.
    d.accessLine(1, AccessType::Load, a);
    EXPECT_EQ(d.snoopFilter().sharers(a), 0b11u);

    // Fill the same shared-LLC set from node 1 until `a` is evicted;
    // the back-invalidation must strip it from both hierarchies and
    // from the directory.
    Addr stride = 2_KiB;
    for (int i = 1; i <= 2; ++i)
        d.accessLine(1, AccessType::Load, a + stride * i);
    EXPECT_FALSE(d.hierarchy(0).holds(a));
    EXPECT_FALSE(d.hierarchy(1).holds(a));
    EXPECT_EQ(d.snoopFilter().sharers(a), 0u);
    EXPECT_GT(d.nodeStats(1).value("back_invalidates"), 0u);
}

/**
 * Private-LLC eviction clears the evictor's bit but must leave other
 * sharers covered: after node 0's copy ages out, a store by node 1
 * sees no holder, and node 0's later read must still be snooped
 * against node 1's now-dirty copy.
 */
TEST(SnoopFilterDirectory, PrivateLlcEvictionNeverSuppressesSnoop)
{
    PhysMap map = PhysMap::paperDefault(MemoryModel::FullyShared);
    CoherenceDomain d(map, SnoopCosts{});
    d.addNode(0, tinyGeom(), latencyProfile(CoreModel::XeonGold));
    d.addNode(1, tinyGeom(), latencyProfile(CoreModel::ThunderX2));

    Addr a = 0x200000;
    d.accessLine(0, AccessType::Load, a);
    EXPECT_EQ(d.snoopFilter().sharers(a), 0b01u);

    // Stream conflicting lines on node 0 until `a` leaves its L3
    // (16 KiB, 4-way: 64 sets, 4 KiB stride aliases the set).
    Addr stride = 4_KiB;
    for (int i = 1; i <= 8 && d.hierarchy(0).holds(a); ++i)
        d.accessLine(0, AccessType::Load, a + stride * i);
    ASSERT_FALSE(d.hierarchy(0).holds(a));
    EXPECT_EQ(d.snoopFilter().sharers(a), 0u);

    // No holder left: node 1's store must not charge a snoop...
    auto r1 = d.accessLine(1, AccessType::Store, a);
    EXPECT_FALSE(r1.snoopInvalidate);
    // ...but node 1 is now a Modified holder, and node 0's read
    // must pay Snoop Data — the bit set on node 1's fill was the
    // only thing standing between us and a silent stale read.
    auto r0 = d.accessLine(0, AccessType::Load, a);
    EXPECT_TRUE(r0.snoopData);
    EXPECT_EQ(d.hierarchy(1).lineState(a), Mesi::Shared);
}

TEST(SnoopFilterDirectory, FlushAllResetsDirectory)
{
    PhysMap map = PhysMap::paperDefault(MemoryModel::FullyShared);
    CoherenceDomain d(map, SnoopCosts{});
    d.addNode(0, tinyGeom(), latencyProfile(CoreModel::XeonGold));
    d.addNode(1, tinyGeom(), latencyProfile(CoreModel::ThunderX2));

    d.accessLine(0, AccessType::Store, 0x5000);
    d.accessLine(1, AccessType::Load, 0x9000);
    EXPECT_GT(d.snoopFilter().entryCount(), 0u);
    d.flushAll();
    EXPECT_EQ(d.snoopFilter().entryCount(), 0u);

    // After a flush, a store by the *other* node must not be misled:
    // node 1 writes the line node 0 used to own; no stale bit may
    // charge a phantom snoop, and the fill must be Exclusive-clean.
    auto r = d.accessLine(1, AccessType::Store, 0x5000);
    EXPECT_FALSE(r.snoopInvalidate);
    EXPECT_EQ(d.snoopFilter().sharers(lineBase(Addr{0x5000})), 0b10u);
}

/**
 * Superset invariant under random traffic: after every access the
 * directory must cover every line any node privately holds — with
 * tiny caches and a shared LLC this exercises fills, upgrades, snoop
 * invalidations, LLC evictions and back-invalidations.
 */
TEST(SnoopFilterDirectory, SupersetInvariantUnderRandomTraffic)
{
    for (bool sharedLlc : {false, true}) {
        PhysMap map = PhysMap::paperDefault(MemoryModel::FullyShared);
        CacheGeometry shared{16_KiB, 4};
        CoherenceDomain d(map, SnoopCosts{},
                          sharedLlc ? &shared : nullptr);
        d.addNode(0, tinyGeom(), latencyProfile(CoreModel::XeonGold));
        d.addNode(1, tinyGeom(),
                  latencyProfile(CoreModel::ThunderX2));

        auto ops = randomTrace(99, 2, 8000, 32_KiB);
        std::vector<Addr> touched;
        for (const Op &op : ops) {
            d.accessLine(op.node, op.type, op.addr);
            touched.push_back(lineBase(op.addr));
            if (touched.size() % 500 == 0)
                expectSuperset(d, 2, touched);
        }
        expectSuperset(d, 2, touched);
    }
}
