#include <gtest/gtest.h>

#include <cmath>

#include "stramash/cache/coherence.hh"
#include "stramash/cache/ruby_ref.hh"
#include "stramash/common/rng.hh"
#include "stramash/common/units.hh"

using namespace stramash;

TEST(RubyRef, MissThenHit)
{
    RubyRefModel ruby(2, RubyGeometry::paperDefault(4_MiB));
    ruby.access(0, AccessType::Load, 0x1000);
    EXPECT_EQ(ruby.levelStats(0, 1).hits, 0u);
    ruby.access(0, AccessType::Load, 0x1000);
    EXPECT_EQ(ruby.levelStats(0, 1).hits, 1u);
    EXPECT_EQ(ruby.levelStats(0, 1).accesses, 2u);
}

TEST(RubyRef, InstFetchUsesL1I)
{
    RubyRefModel ruby(2, RubyGeometry::paperDefault(4_MiB));
    ruby.access(0, AccessType::InstFetch, 0x1000);
    ruby.access(0, AccessType::InstFetch, 0x1000);
    EXPECT_EQ(ruby.levelStats(0, 0).hits, 1u);
    EXPECT_EQ(ruby.levelStats(0, 1).accesses, 0u);
}

TEST(RubyRef, CrossNodeWriteInvalidates)
{
    RubyRefModel ruby(2, RubyGeometry::paperDefault(4_MiB));
    ruby.access(0, AccessType::Load, 0x2000);
    ruby.access(1, AccessType::Store, 0x2000);
    // Node 0's next access must miss (its copy was invalidated).
    ruby.access(0, AccessType::Load, 0x2000);
    EXPECT_EQ(ruby.levelStats(0, 1).hits, 0u);
}

TEST(RubyRef, ExclusiveSpillsThroughLevels)
{
    // Tiny L1 so spills exercise L2/L3.
    RubyGeometry g{1_KiB, 1_KiB, 4_KiB, 16_KiB, 2, 4, 4};
    RubyRefModel ruby(1, g);
    // Fill several conflicting lines; L1 is 1 KiB 2-way = 8 sets,
    // so lines 512 B apart collide.
    for (int i = 0; i < 6; ++i)
        ruby.access(0, AccessType::Load, Addr{512} * i);
    // The first line has spilled to L2; touching it is an L2 hit.
    ruby.access(0, AccessType::Load, 0);
    EXPECT_GE(ruby.levelStats(0, 2).hits, 1u);
}

TEST(RubyRef, FlushResets)
{
    RubyRefModel ruby(1, RubyGeometry::paperDefault(4_MiB));
    ruby.access(0, AccessType::Load, 0x1000);
    ruby.flushAll();
    ruby.access(0, AccessType::Load, 0x1000);
    EXPECT_EQ(ruby.levelStats(0, 1).hits, 0u);
}

/**
 * Fig. 8 methodology in miniature: the primary plugin model and the
 * independent Ruby-style model replay the same trace; their
 * per-level hit rates must agree closely (the paper reports < 5%
 * discrepancy vs gem5).
 */
class ModelAgreement : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ModelAgreement, HitRatesWithinFivePercent)
{
    PhysMap map = PhysMap::paperDefault(MemoryModel::FullyShared);
    CoherenceDomain plugin(map, SnoopCosts{});
    auto geom = HierarchyGeometry::paperDefault(4_MiB);
    plugin.addNode(0, geom, latencyProfile(CoreModel::XeonGold));
    RubyRefModel ruby(1, RubyGeometry::paperDefault(4_MiB));

    // A mixed trace: sequential sweeps + random pockets, several
    // phases, biased toward a 2 MiB working set.
    Rng rng(GetParam());
    Addr base = 0x10000000;
    for (int phase = 0; phase < 3; ++phase) {
        for (int i = 0; i < 30000; ++i) {
            Addr a;
            if (rng.chance(0.6)) {
                a = base + (static_cast<Addr>(i) * 64) % (2_MiB);
            } else {
                a = base + rng.below(8_MiB);
            }
            AccessType t = rng.chance(0.3) ? AccessType::Store
                                           : AccessType::Load;
            plugin.accessLine(0, t, a);
            ruby.access(0, t, a);
        }
    }

    auto &stats = plugin.nodeStats(0);
    double pluginL1 =
        static_cast<double>(stats.value("l1_hits")) /
        static_cast<double>(stats.value("l1_accesses"));
    double rubyL1 = ruby.levelStats(0, 1).hitRate();
    EXPECT_LT(std::abs(pluginL1 - rubyL1), 0.05)
        << "plugin " << pluginL1 << " ruby " << rubyL1;

    double pluginL2 =
        static_cast<double>(stats.value("l2_hits")) /
        std::max<double>(1.0, static_cast<double>(
                                  stats.value("l2_accesses")));
    double rubyL2 = ruby.levelStats(0, 2).hitRate();
    EXPECT_LT(std::abs(pluginL2 - rubyL2), 0.12)
        << "plugin " << pluginL2 << " ruby " << rubyL2;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelAgreement,
                         testing::Values(11, 22, 33));
