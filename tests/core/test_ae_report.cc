#include <gtest/gtest.h>

#include <sstream>

#include "stramash/core/ae_report.hh"
#include "stramash/core/app.hh"

using namespace stramash;

namespace
{

std::unique_ptr<System>
runLittle(OsDesign design, MemoryModel model)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = model;
    auto sys = std::make_unique<System>(cfg);
    App app(*sys, 0);
    Addr buf = app.mmap(64 * pageSize);
    for (int i = 0; i < 64; ++i)
        app.write<std::uint64_t>(buf + Addr(i) * pageSize, i);
    app.migrateToNext();
    for (int i = 0; i < 64; ++i)
        app.read<std::uint64_t>(buf + Addr(i) * pageSize);
    return sys;
}

} // namespace

TEST(AeReport, CollectsSaneCounters)
{
    auto sys = runLittle(OsDesign::FusedKernel, MemoryModel::Shared);
    AeNodeReport x86 = collectAeReport(*sys, 0);
    AeNodeReport arm = collectAeReport(*sys, 1);
    EXPECT_EQ(x86.label, "x86");
    EXPECT_EQ(arm.label, "Arm");
    EXPECT_GT(x86.instructions, 0u);
    EXPECT_GT(arm.instructions, 0u);
    EXPECT_GT(x86.l1Accesses, x86.l1Hits * 0); // accesses recorded
    EXPECT_LE(x86.l1HitRate, 100.0);
    // The fused remote read pass hits remote memory from Arm.
    EXPECT_GT(arm.remoteMemHits + arm.remoteSharedMemHits, 0u);
    EXPECT_EQ(x86.runtime + arm.runtime, sys->runtime());
}

TEST(AeReport, PrintsExampleOutputShape)
{
    auto sys = runLittle(OsDesign::FusedKernel, MemoryModel::Shared);
    std::ostringstream os;
    printAeReport(os, *sys);
    std::string out = os.str();
    // The artifact's landmark lines.
    EXPECT_NE(out.find("x86:"), std::string::npos);
    EXPECT_NE(out.find("Arm:"), std::string::npos);
    EXPECT_NE(out.find("L1 Cache Hit Rate:"), std::string::npos);
    EXPECT_NE(out.find(">>> Remote Memory Hits:"), std::string::npos);
    EXPECT_NE(out.find(">>> Runtime:"), std::string::npos);
    EXPECT_NE(out.find("Number of Instructions:"), std::string::npos);
    EXPECT_NE(out.find("Final Runtime"), std::string::npos);
}

TEST(AeReport, FullySharedApproximationFormula)
{
    // The appendix formula: subtracting the remote-latency surplus
    // from a Shared-model run approximates the FullyShared runtime.
    auto shared = runLittle(OsDesign::FusedKernel,
                            MemoryModel::Shared);
    Cycles approx = approximateFullyShared(*shared);
    EXPECT_LT(approx, shared->runtime());

    auto fully = runLittle(OsDesign::FusedKernel,
                           MemoryModel::FullyShared);
    // Within 30% of the actually-measured FullyShared run (the
    // appendix itself calls this an approximation).
    double ratio = static_cast<double>(approx) /
                   static_cast<double>(fully->runtime());
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.3);
}

TEST(AeReport, NoRemoteHitsMeansNoCorrection)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.memoryModel = MemoryModel::FullyShared;
    System sys(cfg);
    App app(sys, 0);
    Addr buf = app.mmap(pageSize);
    app.write<std::uint64_t>(buf, 1);
    EXPECT_EQ(approximateFullyShared(sys), sys.runtime());
}
