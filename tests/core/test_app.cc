#include <gtest/gtest.h>

#include "stramash/core/app.hh"

using namespace stramash;

namespace
{

class AppTest : public testing::Test
{
  protected:
    AppTest()
    {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        sys_ = std::make_unique<System>(cfg);
        app_ = std::make_unique<App>(*sys_, 0);
    }

    std::unique_ptr<System> sys_;
    std::unique_ptr<App> app_;
};

} // namespace

TEST_F(AppTest, StandardLayoutCreated)
{
    Task &t = sys_->kernel(0).task(app_->pid());
    const Vma *code = t.as->vmas().find(0x400000);
    ASSERT_NE(code, nullptr);
    EXPECT_EQ(code->kind, VmaKind::Code);
    EXPECT_TRUE(code->prot.executable);
    EXPECT_FALSE(code->prot.writable);
    const Vma *stack = t.as->vmas().find(App::stackTop - 64);
    ASSERT_NE(stack, nullptr);
    EXPECT_EQ(stack->kind, VmaKind::Stack);
    EXPECT_EQ(t.state.pc, 0x400000u);
    EXPECT_EQ(t.state.pid, app_->pid());
}

TEST_F(AppTest, MmapRegionsDoNotOverlap)
{
    Addr a = app_->mmap(10 * pageSize);
    Addr b = app_->mmap(pageSize);
    Addr c = app_->mmap(100);
    EXPECT_GE(b, a + 10 * pageSize);
    EXPECT_GE(c, b + pageSize);
    // Sub-page sizes round up to a page.
    Task &t = sys_->kernel(0).task(app_->pid());
    const Vma *v = t.as->vmas().find(c);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->size(), pageSize);
}

TEST_F(AppTest, ReadWriteRoundTripVariousWidths)
{
    Addr buf = app_->mmap(pageSize);
    app_->write<std::uint8_t>(buf, 0x12);
    app_->write<std::uint16_t>(buf + 2, 0x3456);
    app_->write<std::uint32_t>(buf + 4, 0x789abcde);
    app_->write<double>(buf + 8, 2.5);
    EXPECT_EQ(app_->read<std::uint8_t>(buf), 0x12);
    EXPECT_EQ(app_->read<std::uint16_t>(buf + 2), 0x3456);
    EXPECT_EQ(app_->read<std::uint32_t>(buf + 4), 0x789abcdeu);
    EXPECT_DOUBLE_EQ(app_->read<double>(buf + 8), 2.5);
}

TEST_F(AppTest, BufferOpsCrossPages)
{
    Addr buf = app_->mmap(4 * pageSize);
    std::vector<std::uint8_t> data(2 * pageSize + 123);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    app_->writeBuf(buf + 100, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    app_->readBuf(buf + 100, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST_F(AppTest, ComputeRetiresIsaExpandedInstructions)
{
    ICount x86Before = sys_->machine().node(0).icount();
    app_->compute(1000);
    EXPECT_EQ(sys_->machine().node(0).icount() - x86Before, 1000u);

    app_->migrateToNext();
    ICount armBefore = sys_->machine().node(1).icount();
    app_->compute(1000);
    // Arm retires ~18% more instructions for the same work.
    EXPECT_EQ(sys_->machine().node(1).icount() - armBefore, 1180u);
}

TEST_F(AppTest, MigrationPreservesUserData)
{
    Addr buf = app_->mmap(8 * pageSize);
    for (int i = 0; i < 64; ++i)
        app_->write<std::uint64_t>(buf + Addr(i) * 512, i * 31 + 1);
    app_->migrateToNext();
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(app_->read<std::uint64_t>(buf + Addr(i) * 512),
                  static_cast<std::uint64_t>(i * 31 + 1));
    }
}

TEST_F(AppTest, WriteVisibleAcrossRepeatedMigrations)
{
    Addr buf = app_->mmap(pageSize);
    std::uint64_t expect = 0;
    for (int round = 0; round < 6; ++round) {
        expect = expect * 3 + round;
        app_->write<std::uint64_t>(buf, expect);
        app_->migrateToNext();
        EXPECT_EQ(app_->read<std::uint64_t>(buf), expect);
    }
}

TEST_F(AppTest, CasAndFetchAdd)
{
    Addr buf = app_->mmap(pageSize);
    app_->write<std::uint32_t>(buf, 10);
    EXPECT_TRUE(app_->cas(buf, 10, 20));
    EXPECT_FALSE(app_->cas(buf, 10, 30));
    EXPECT_EQ(app_->fetchAdd(buf, 5), 20u);
    EXPECT_EQ(app_->read<std::uint32_t>(buf), 25u);
}

TEST_F(AppTest, CurrentKernelFollowsMigration)
{
    EXPECT_EQ(app_->currentKernel().nodeId(), 0u);
    app_->migrateToNext();
    EXPECT_EQ(app_->currentKernel().nodeId(), 1u);
    EXPECT_EQ(app_->currentTask().pid, app_->pid());
}

TEST_F(AppTest, DestructorCleansUpTasks)
{
    Pid pid = app_->pid();
    app_->migrateToNext();
    app_.reset();
    EXPECT_FALSE(sys_->kernel(0).hasTask(pid));
    EXPECT_FALSE(sys_->kernel(1).hasTask(pid));
}

TEST_F(AppTest, DeathOnZeroByteMmap)
{
    EXPECT_DEATH(app_->mmap(0), "zero");
}
