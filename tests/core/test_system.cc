#include <gtest/gtest.h>

#include "stramash/core/app.hh"

using namespace stramash;

/** Every (design, model, transport) combination must stand up. */
class SystemMatrix
    : public testing::TestWithParam<
          std::tuple<OsDesign, MemoryModel, Transport>>
{
};

TEST_P(SystemMatrix, ConstructsAndRunsAnApp)
{
    auto [design, model, transport] = GetParam();
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = model;
    cfg.transport = transport;
    System sys(cfg);

    EXPECT_EQ(sys.nodeCount(), 2u);
    EXPECT_EQ(sys.kernel(0).isa(), IsaType::X86_64);
    EXPECT_EQ(sys.kernel(1).isa(), IsaType::AArch64);
    EXPECT_EQ(&sys.kernelByIsa(IsaType::AArch64), &sys.kernel(1));

    App app(sys, 0);
    Addr buf = app.mmap(16 * pageSize);
    for (int i = 0; i < 16; ++i)
        app.write<std::uint64_t>(buf + Addr(i) * pageSize, i * 7);
    app.migrateToNext();
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(app.read<std::uint64_t>(buf + Addr(i) * pageSize),
                  static_cast<std::uint64_t>(i * 7));
    }
    app.migrateToNext();
    EXPECT_EQ(app.read<std::uint64_t>(buf), 0u);
    EXPECT_GT(sys.runtime(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SystemMatrix,
    testing::Combine(testing::Values(OsDesign::MultipleKernel,
                                     OsDesign::FusedKernel),
                     testing::Values(MemoryModel::Separated,
                                     MemoryModel::Shared,
                                     MemoryModel::FullyShared),
                     testing::Values(Transport::SharedMemory,
                                     Transport::Network)),
    [](const auto &info) {
        return std::string(osDesignName(std::get<0>(info.param))) +
               "_" + memoryModelName(std::get<1>(info.param)) + "_" +
               transportName(std::get<2>(info.param));
    });

TEST(System, PolicySelectionMatchesDesign)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    System popcorn(cfg);
    EXPECT_NE(popcorn.dsmEngine(), nullptr);
    EXPECT_EQ(popcorn.stramashState(), nullptr);
    EXPECT_EQ(popcorn.globalAllocator(), nullptr);

    cfg.osDesign = OsDesign::FusedKernel;
    System fused(cfg);
    EXPECT_EQ(fused.dsmEngine(), nullptr);
    EXPECT_NE(fused.stramashState(), nullptr);
    EXPECT_NE(fused.globalAllocator(), nullptr);
}

TEST(System, GlobalAllocatorCanBeDisabled)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.enableGlobalAllocator = false;
    System sys(cfg);
    EXPECT_EQ(sys.globalAllocator(), nullptr);
}

TEST(System, GlobalAllocatorExcludesMessagingArea)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);
    ASSERT_NE(sys.globalAllocator(), nullptr);
    // The 128 MiB ring area at 4 GiB is not handed out as blocks:
    // with 256 MiB blocks over [4 GiB + 128 MiB, 8 GiB) only 15 fit.
    EXPECT_EQ(sys.globalAllocator()->freeBlocks(), 15u);
}

TEST(System, SpawnAndExitAcrossKernels)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    System sys(cfg);
    Pid pid = sys.spawn(0);
    EXPECT_TRUE(sys.kernel(0).hasTask(pid));
    EXPECT_FALSE(sys.kernel(1).hasTask(pid));
    sys.migrate(pid, 1);
    EXPECT_TRUE(sys.kernel(1).hasTask(pid));
    sys.exit(pid);
    EXPECT_FALSE(sys.kernel(0).hasTask(pid));
    EXPECT_FALSE(sys.kernel(1).hasTask(pid));
}

TEST(System, ResetExperimentCountersClearsEverything)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    System sys(cfg);
    App app(sys, 0);
    Addr buf = app.mmap(pageSize);
    app.write<std::uint64_t>(buf, 1);
    app.migrateToNext();
    app.read<std::uint64_t>(buf);
    EXPECT_GT(sys.messagesSent(), 0u);
    EXPECT_GT(sys.runtime(), 0u);
    sys.resetExperimentCounters();
    EXPECT_EQ(sys.messagesSent(), 0u);
    EXPECT_EQ(sys.replicatedPages(), 0u);
    EXPECT_EQ(sys.runtime(), 0u);
}

TEST(System, DistinctPidsPerSpawn)
{
    SystemConfig cfg;
    System sys(cfg);
    Pid a = sys.spawn(0);
    Pid b = sys.spawn(1);
    EXPECT_NE(a, b);
    EXPECT_EQ(sys.whereIs(b), 1u);
}
