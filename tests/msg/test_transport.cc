#include <gtest/gtest.h>

#include "stramash/common/units.hh"
#include "stramash/msg/transport.hh"

using namespace stramash;

namespace
{

Message
mkMsg(MsgType t, NodeId from, NodeId to)
{
    Message m;
    m.type = t;
    m.from = from;
    m.to = to;
    return m;
}

} // namespace

class TransportBoth : public testing::TestWithParam<Transport>
{
  protected:
    TransportBoth()
        : machine_(MachineConfig::paperPair(MemoryModel::Shared))
    {
        if (GetParam() == Transport::SharedMemory) {
            layer_ = std::make_unique<ShmMessageLayer>(
                machine_, ShmMessageLayer::paperAreaBase(
                              MemoryModel::Shared),
                ShmMessageLayer::paperAreaBytes, true);
        } else {
            layer_ = std::make_unique<TcpMessageLayer>(machine_);
        }
    }

    Machine machine_;
    std::unique_ptr<MessageLayer> layer_;
};

TEST_P(TransportBoth, SendReceiveRoundTrip)
{
    Message m = mkMsg(MsgType::PageRequest, 0, 1);
    m.arg0 = 42;
    m.payload = {1, 2, 3, 4};
    layer_->send(m);
    auto out = layer_->tryReceive(1);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->arg0, 42u);
    EXPECT_EQ(out->payload, (std::vector<std::uint8_t>{1, 2, 3, 4}));
    EXPECT_GT(out->seq, 0u);
    EXPECT_FALSE(layer_->tryReceive(1).has_value());
}

TEST_P(TransportBoth, CountersTrackTraffic)
{
    layer_->send(mkMsg(MsgType::FutexWait, 0, 1));
    layer_->send(mkMsg(MsgType::FutexWake, 1, 0));
    EXPECT_EQ(layer_->messagesSent(), 2u);
    EXPECT_GT(layer_->bytesSent(), 0u);
    EXPECT_EQ(layer_->stats().value("sent.futex_wait"), 1u);
    EXPECT_EQ(layer_->stats().value("sent.futex_wake"), 1u);
    layer_->resetCounters();
    EXPECT_EQ(layer_->messagesSent(), 0u);
}

TEST_P(TransportBoth, DispatchPendingDrivesHandler)
{
    int delivered = 0;
    layer_->registerHandler(1, [&](const Message &m) {
        ++delivered;
        EXPECT_EQ(m.type, MsgType::VmaRequest);
    });
    layer_->send(mkMsg(MsgType::VmaRequest, 0, 1));
    layer_->send(mkMsg(MsgType::VmaRequest, 0, 1));
    layer_->dispatchPending(1);
    EXPECT_EQ(delivered, 2);
}

TEST_P(TransportBoth, RpcRequestResponse)
{
    layer_->registerHandler(1, [&](const Message &m) {
        Message resp = mkMsg(MsgType::PageResponse, 1, 0);
        resp.arg0 = m.arg0 * 2;
        layer_->send(resp);
    });
    layer_->registerHandler(0, [&](const Message &) {});
    Message req = mkMsg(MsgType::PageRequest, 0, 1);
    req.arg0 = 21;
    Message resp = layer_->rpc(req, MsgType::PageResponse);
    EXPECT_EQ(resp.type, MsgType::PageResponse);
    EXPECT_EQ(resp.arg0, 42u);
}

TEST_P(TransportBoth, NestedRpcWorks)
{
    // Node 1's handler performs its own RPC back to node 0 before
    // answering (e.g. a fault handler needing more information).
    layer_->registerHandler(0, [&](const Message &m) {
        if (m.type == MsgType::VmaRequest) {
            Message r = mkMsg(MsgType::VmaResponse, 0, 1);
            r.arg0 = 7;
            layer_->send(r);
        }
    });
    layer_->registerHandler(1, [&](const Message &m) {
        if (m.type == MsgType::PageRequest) {
            Message inner = mkMsg(MsgType::VmaRequest, 1, 0);
            Message vma = layer_->rpc(inner, MsgType::VmaResponse);
            Message resp = mkMsg(MsgType::PageResponse, 1, 0);
            resp.arg0 = vma.arg0 + 1;
            layer_->send(resp);
        }
    });
    Message resp = layer_->rpc(mkMsg(MsgType::PageRequest, 0, 1),
                               MsgType::PageResponse);
    EXPECT_EQ(resp.arg0, 8u);
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportBoth,
                         testing::Values(Transport::SharedMemory,
                                         Transport::Network),
                         [](const auto &info) {
                             return std::string(
                                 transportName(info.param));
                         });

TEST(TcpTransport, ChargesPropagationToReceiver)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    TcpMessageLayer layer(m);
    layer.send(mkMsg(MsgType::TaskMigrate, 0, 1));
    Cycles before = m.node(1).cycles();
    layer.tryReceive(1);
    Cycles cost = m.node(1).cycles() - before;
    // 37.5 us at 2.0 GHz = 75000 cycles, plus handler and stack.
    EXPECT_GT(cost, 75000u);
    EXPECT_LT(cost, 75000u + 16000u);
}

TEST(ShmTransport, IpiNotificationChargesReceiver)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    ShmMessageLayer layer(m, 4_GiB, 16_MiB, true);
    Cycles before = m.node(1).cycles();
    layer.send(mkMsg(MsgType::TaskMigrate, 0, 1));
    // The receiver got the 2 us IPI cost already.
    EXPECT_GE(m.node(1).cycles() - before, 4000u);
    EXPECT_EQ(m.ipisReceived(1), 1u);
}

TEST(ShmTransport, PollingModeSkipsIpi)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    ShmMessageLayer layer(m, 4_GiB, 16_MiB, false);
    layer.send(mkMsg(MsgType::TaskMigrate, 0, 1));
    EXPECT_EQ(m.ipisReceived(1), 0u);
    EXPECT_TRUE(layer.tryReceive(1).has_value());
}

TEST(ShmTransport, PaperPlacementRules)
{
    EXPECT_EQ(ShmMessageLayer::paperAreaBase(MemoryModel::Separated),
              1_GiB);
    EXPECT_EQ(ShmMessageLayer::paperAreaBase(MemoryModel::Shared),
              4_GiB);
    EXPECT_EQ(
        ShmMessageLayer::paperAreaBase(MemoryModel::FullyShared),
        1_GiB);
    EXPECT_EQ(ShmMessageLayer::paperAreaBytes, 128_MiB);
}

TEST(ShmTransport, TcpSlowerThanShmForSameTraffic)
{
    Machine m1(MachineConfig::paperPair(MemoryModel::Shared));
    Machine m2(MachineConfig::paperPair(MemoryModel::Shared));
    ShmMessageLayer shm(m1, 4_GiB, 16_MiB, true);
    TcpMessageLayer tcp(m2);
    for (int i = 0; i < 10; ++i) {
        Message msg = mkMsg(MsgType::PageResponse, 0, 1);
        msg.payload.resize(pageSize);
        shm.send(msg);
        shm.tryReceive(1);
        tcp.send(msg);
        tcp.tryReceive(1);
    }
    EXPECT_LT(m1.totalRuntime(), m2.totalRuntime());
}

TEST(TransportDeath, MessageToSelfPanics)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    TcpMessageLayer layer(m);
    EXPECT_DEATH(layer.send(mkMsg(MsgType::TaskMigrate, 0, 0)),
                 "message to self");
}
