#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "stramash/msg/message.hh"

using namespace stramash;

// Satellite: every MsgType must round-trip through msgTypeName() —
// this is the canary that keeps the string table in sync when a new
// message type is added.

TEST(MsgTypeNames, EveryTypeHasAUniqueNonEmptyName)
{
    std::set<std::string> seen;
    for (unsigned t = 0; t < msgTypeCount; ++t) {
        const char *name = msgTypeName(static_cast<MsgType>(t));
        ASSERT_NE(name, nullptr) << "type " << t;
        EXPECT_GT(std::strlen(name), 0u) << "type " << t;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate name '" << name << "' for type " << t;
    }
    EXPECT_EQ(seen.size(), msgTypeCount);
}

TEST(MsgTypeNames, CountMatchesLastEnumerator)
{
    // StealResponse is deliberately kept last; msgTypeCount derives
    // from it.
    EXPECT_EQ(static_cast<unsigned>(MsgType::StealResponse),
              msgTypeCount - 1);
    EXPECT_STREQ(msgTypeName(MsgType::StealResponse),
                 "steal_response");
}

TEST(MsgTypeNames, ResponseClassificationMatchesNaming)
{
    // The naming convention *is* the protocol convention: every
    // "..._response"/"..._ack" type (and the bare ack) must classify
    // as a response, and nothing else may.
    for (unsigned t = 0; t < msgTypeCount; ++t) {
        MsgType type = static_cast<MsgType>(t);
        std::string name = msgTypeName(type);
        auto endsWith = [&](const std::string &suffix) {
            return name.size() >= suffix.size() &&
                   name.compare(name.size() - suffix.size(),
                                suffix.size(), suffix) == 0;
        };
        bool looksLikeResponse =
            endsWith("_response") || endsWith("_ack") || name == "ack";
        // Exception: heartbeat acks are fire-and-forget (rpcId = 0)
        // and must never be captured by the RPC serve stack as an
        // unrelated request's response, so they classify as
        // non-responses despite the "_ack" suffix.
        if (type == MsgType::HeartbeatAck)
            looksLikeResponse = false;
        EXPECT_EQ(msgTypeIsResponse(type), looksLikeResponse)
            << "type '" << name << "'";
    }
}

TEST(MessageCrc, KnownVectorAndSensitivity)
{
    // IEEE 802.3 reflected CRC-32 check value.
    const char *check = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(check), 9),
              0xcbf43926u);

    Message m;
    m.type = MsgType::PageResponse;
    m.from = 0;
    m.to = 1;
    m.arg0 = 42;
    m.payload = {1, 2, 3, 4};
    std::uint32_t c = m.computeCrc();
    EXPECT_NE(c, 0u); // 0 is reserved for "unchecked"

    // Any covered field changing must change the checksum...
    Message flipped = m;
    flipped.payload[2] ^= 0xff;
    EXPECT_NE(flipped.computeCrc(), c);
    flipped = m;
    flipped.arg0 ^= 1;
    EXPECT_NE(flipped.computeCrc(), c);
    flipped = m;
    flipped.rpcId = 7;
    EXPECT_NE(flipped.computeCrc(), c);

    // ...while seq is deliberately excluded: a retransmission gets a
    // fresh seq but must keep the original checksum.
    Message retx = m;
    retx.seq = 991;
    EXPECT_EQ(retx.computeCrc(), c);
}
