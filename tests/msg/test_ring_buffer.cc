#include <gtest/gtest.h>

#include "stramash/common/units.hh"
#include "stramash/msg/ring_buffer.hh"

using namespace stramash;

namespace
{

class RingTest : public testing::Test
{
  protected:
    RingTest()
        : machine_(MachineConfig::paperPair(MemoryModel::Shared)),
          ring_(machine_, 1_GiB, 1_MiB)
    {
    }

    Message
    makeMsg(MsgType t, std::size_t payload = 0)
    {
        Message m;
        m.type = t;
        m.from = 0;
        m.to = 1;
        m.arg0 = 0x1111;
        m.arg1 = 0x2222;
        m.arg2 = 0x3333;
        m.payload.resize(payload);
        for (std::size_t i = 0; i < payload; ++i)
            m.payload[i] = static_cast<std::uint8_t>(i * 13);
        return m;
    }

    Machine machine_;
    MessageRing ring_;
};

} // namespace

TEST_F(RingTest, EmptyDequeueReturnsNothing)
{
    EXPECT_FALSE(ring_.dequeue(1).has_value());
    EXPECT_EQ(ring_.size(), 0u);
    EXPECT_FALSE(ring_.pollProbe(1));
}

TEST_F(RingTest, RoundTripPreservesEverything)
{
    Message in = makeMsg(MsgType::PageRequest, 512);
    in.seq = 77;
    ASSERT_TRUE(ring_.enqueue(0, in));
    EXPECT_EQ(ring_.size(), 1u);
    EXPECT_TRUE(ring_.pollProbe(1));
    auto out = ring_.dequeue(1);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->type, in.type);
    EXPECT_EQ(out->from, in.from);
    EXPECT_EQ(out->to, in.to);
    EXPECT_EQ(out->seq, in.seq);
    EXPECT_EQ(out->arg0, in.arg0);
    EXPECT_EQ(out->arg1, in.arg1);
    EXPECT_EQ(out->arg2, in.arg2);
    EXPECT_EQ(out->payload, in.payload);
    EXPECT_EQ(ring_.size(), 0u);
}

TEST_F(RingTest, FifoOrder)
{
    for (int i = 0; i < 10; ++i) {
        Message m = makeMsg(MsgType::FutexWait);
        m.arg0 = static_cast<std::uint64_t>(i);
        ASSERT_TRUE(ring_.enqueue(0, m));
    }
    for (int i = 0; i < 10; ++i) {
        auto out = ring_.dequeue(1);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->arg0, static_cast<std::uint64_t>(i));
    }
}

TEST_F(RingTest, FullPageloadFits)
{
    Message m = makeMsg(MsgType::PageResponse, pageSize);
    ASSERT_TRUE(ring_.enqueue(0, m));
    auto out = ring_.dequeue(1);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->payload.size(), pageSize);
    EXPECT_EQ(out->payload, m.payload);
}

TEST_F(RingTest, WrapAroundWorks)
{
    // Push/pop more than the ring capacity several times over.
    std::size_t total = ring_.capacity() * 3 + 7;
    for (std::size_t i = 0; i < total; ++i) {
        Message m = makeMsg(MsgType::TaskMigrate);
        m.arg0 = i;
        ASSERT_TRUE(ring_.enqueue(0, m));
        auto out = ring_.dequeue(1);
        ASSERT_TRUE(out.has_value());
        ASSERT_EQ(out->arg0, i);
    }
}

TEST_F(RingTest, FullRingRejectsEnqueue)
{
    std::size_t cap = ring_.capacity();
    for (std::size_t i = 0; i < cap; ++i)
        ASSERT_TRUE(ring_.enqueue(0, makeMsg(MsgType::TaskMigrate)));
    EXPECT_FALSE(ring_.enqueue(0, makeMsg(MsgType::TaskMigrate)));
    // Draining one slot frees space.
    EXPECT_TRUE(ring_.dequeue(1).has_value());
    EXPECT_TRUE(ring_.enqueue(0, makeMsg(MsgType::TaskMigrate)));
}

TEST_F(RingTest, EnqueueChargesProducer)
{
    Cycles before = machine_.node(0).cycles();
    ring_.enqueue(0, makeMsg(MsgType::PageResponse, pageSize));
    EXPECT_GT(machine_.node(0).cycles(), before);
    EXPECT_EQ(machine_.node(1).cycles(), 0u);
}

TEST_F(RingTest, DequeueChargesConsumer)
{
    ring_.enqueue(0, makeMsg(MsgType::PageResponse, pageSize));
    Cycles before = machine_.node(1).cycles();
    ring_.dequeue(1);
    EXPECT_GT(machine_.node(1).cycles(), before);
}

TEST(RingPlacement, PoolRingIsRemoteForBoth)
{
    // A ring in the CXL pool (Shared model) costs both sides remote
    // latency; a ring in x86-local memory is cheaper for x86.
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    MessageRing poolRing(m, 4_GiB, 1_MiB);
    MessageRing localRing(m, 1_GiB, 1_MiB);

    Message msg;
    msg.type = MsgType::TaskMigrate;
    msg.from = 0;
    msg.to = 1;

    Cycles x0 = m.node(0).cycles();
    poolRing.enqueue(0, msg);
    Cycles poolCost = m.node(0).cycles() - x0;

    x0 = m.node(0).cycles();
    localRing.enqueue(0, msg);
    Cycles localCost = m.node(0).cycles() - x0;

    EXPECT_GT(poolCost, localCost);
}

TEST(RingDeath, TinyAreaPanics)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    EXPECT_DEATH(MessageRing(m, 1_GiB, 128), "too small");
}

TEST(RingOccupancy, HooksTrackDepthAndHighWatermark)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    MessageRing ring(m, 4_GiB, 1_MiB);

    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.freeSlots(), ring.capacity());
    EXPECT_FALSE(ring.full());
    EXPECT_DOUBLE_EQ(ring.occupancy(), 0.0);
    EXPECT_EQ(ring.highWatermark(), 0u);

    Message msg;
    msg.type = MsgType::TaskMigrate;
    msg.from = 0;
    msg.to = 1;
    ASSERT_TRUE(ring.enqueue(0, msg));
    ASSERT_TRUE(ring.enqueue(0, msg));
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.freeSlots(), ring.capacity() - 2);
    EXPECT_EQ(ring.highWatermark(), 2u);

    // Draining lowers occupancy but never the high-watermark.
    ring.dequeue(1);
    ring.dequeue(1);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.highWatermark(), 2u);
    ASSERT_TRUE(ring.enqueue(0, msg));
    EXPECT_EQ(ring.highWatermark(), 2u);
}

TEST(RingOccupancy, FullRingReportsFullAndRefuses)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    // Smallest legal area: header + a handful of slots.
    MessageRing ring(m, 4_GiB, 64 + 4 * MessageRing::slotBytes);

    Message msg;
    msg.type = MsgType::TaskMigrate;
    msg.from = 0;
    msg.to = 1;
    while (!ring.full())
        ASSERT_TRUE(ring.enqueue(0, msg));
    EXPECT_EQ(ring.freeSlots(), 0u);
    EXPECT_DOUBLE_EQ(ring.occupancy(), 1.0);
    EXPECT_FALSE(ring.enqueue(0, msg));
    EXPECT_EQ(ring.highWatermark(), ring.capacity());
}
