/**
 * @file
 * The tryRpc retry loop's cycle accounting, pinned exactly: every
 * failed attempt charges the response timeout, every retry is
 * preceded by the policy's exponential backoff (doubling from the
 * base to the cap), and stale or duplicate replies are discarded
 * rather than matched to a later RPC.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "stramash/msg/transport.hh"

using namespace stramash;

namespace
{

/** Two nodes, a fault plan, and an echo server on node 1. */
struct Rig
{
    explicit Rig(const FaultPlan &plan)
    {
        MachineConfig mc = MachineConfig::paperPair(MemoryModel::Shared);
        mc.faultPlan = plan;
        machine = std::make_unique<Machine>(mc);
        layer = std::make_unique<TcpMessageLayer>(*machine);
        layer->registerHandler(1, [this](const Message &m) {
            if (m.type != MsgType::PageRequest)
                return;
            ++requestsServed;
            Message resp;
            resp.type = MsgType::PageResponse;
            resp.from = 1;
            resp.to = m.from;
            resp.arg0 = m.arg0;
            layer->send(resp);
        });
        layer->registerHandler(0, [](const Message &) {});
    }

    Message
    request(std::uint64_t tag) const
    {
        Message req;
        req.type = MsgType::PageRequest;
        req.from = 0;
        req.to = 1;
        req.arg0 = tag;
        return req;
    }

    FaultInjector &injector() { return *machine->faultInjector(); }

    std::unique_ptr<Machine> machine;
    std::unique_ptr<MessageLayer> layer;
    unsigned requestsServed = 0;
};

} // namespace

TEST(RpcBackoff, BackoffScheduleDoublesFromBaseToCap)
{
    RpcPolicy pol;
    Cycles expect = pol.backoffBaseCycles;
    for (unsigned a = 1; a < pol.maxAttempts; ++a) {
        EXPECT_EQ(pol.backoffForAttempt(a), expect) << "attempt " << a;
        expect = std::min(expect * 2, pol.backoffCapCycles);
    }
    EXPECT_EQ(pol.backoffForAttempt(pol.maxAttempts),
              pol.backoffCapCycles);
}

TEST(RpcBackoff, AllAttemptsDroppedChargeIsExactPerPolicy)
{
    // Unbounded drop plan: every transmission dies, so tryRpc walks
    // the whole retry ladder and gives up. The requester's clock
    // must advance by *exactly* one response timeout per attempt plus
    // the exponential backoff before each retry — nothing else.
    FaultPlan plan;
    plan.msgDropRate = 1.0;
    Rig rig(plan);
    const RpcPolicy &pol = rig.layer->rpcPolicy();

    Cycles before = rig.machine->node(0).cycles();
    auto resp = rig.layer->tryRpc(rig.request(7), MsgType::PageResponse);
    Cycles spent = rig.machine->node(0).cycles() - before;

    EXPECT_FALSE(resp.has_value());
    Cycles expect = pol.maxAttempts * pol.responseTimeoutCycles;
    for (unsigned a = 1; a < pol.maxAttempts; ++a)
        expect += pol.backoffForAttempt(a);
    EXPECT_EQ(spent, expect);
    EXPECT_EQ(rig.injector().retries().value("timeouts"),
              pol.maxAttempts);
    EXPECT_EQ(rig.injector().retries().value("attempts"),
              pol.maxAttempts - 1u);
    EXPECT_EQ(rig.injector().retries().value("gave_up"), 1u);
    EXPECT_EQ(rig.requestsServed, 0u);
}

TEST(RpcBackoff, PartialDropChargesOnlyTheFailedAttempts)
{
    // Three drops, then the wire heals: the failed prefix is charged
    // in full (three timeouts, backoffs 1-3) and the fourth attempt
    // succeeds.
    FaultPlan plan;
    plan.msgDropRate = 1.0;
    plan.maxFaults = 3;
    Rig rig(plan);
    const RpcPolicy &pol = rig.layer->rpcPolicy();

    Cycles before = rig.machine->node(0).cycles();
    auto resp = rig.layer->tryRpc(rig.request(7), MsgType::PageResponse);
    Cycles spent = rig.machine->node(0).cycles() - before;

    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->arg0, 7u);
    EXPECT_EQ(rig.requestsServed, 1u);
    Cycles failedCharge = 3 * pol.responseTimeoutCycles +
                          pol.backoffForAttempt(1) +
                          pol.backoffForAttempt(2) +
                          pol.backoffForAttempt(3);
    EXPECT_GE(spent, failedCharge); // plus the live attempt's wire work
    EXPECT_EQ(rig.injector().retries().value("timeouts"), 3u);
    EXPECT_EQ(rig.injector().retries().value("attempts"), 3u);
}

TEST(RpcBackoff, DuplicateReplyIsDiscardedNotMatchedToALaterRpc)
{
    // Duplicate both wire legs of the first RPC: the server sees the
    // request twice (seq-dropped once, served once) and the requester
    // sees the reply twice (the extra copy is discarded). A second,
    // unrelated RPC must then get its own fresh answer — never the
    // stale duplicate.
    FaultPlan plan;
    plan.msgDupRate = 1.0;
    plan.maxFaults = 2;
    Rig rig(plan);

    auto first = rig.layer->tryRpc(rig.request(7), MsgType::PageResponse);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->arg0, 7u);
    EXPECT_EQ(rig.requestsServed, 1u);
    EXPECT_EQ(rig.layer->stats().value("dup_dropped"), 2u);

    auto second = rig.layer->tryRpc(rig.request(9), MsgType::PageResponse);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->arg0, 9u);
    EXPECT_EQ(rig.requestsServed, 2u);
}

TEST(RpcBackoff, ReplayedReplyCompletesOnlyItsOwnRpc)
{
    // Deliver the request, drop the reply: the retried request hits
    // the server's reply cache (the handler must not run again) and
    // the replay completes the RPC. A follow-up RPC is unaffected.
    FaultPlan plan;
    plan.msgDropRate = 0.5;
    plan.maxFaults = 1;
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 1000; ++s) {
        FaultPlan probePlan = plan;
        probePlan.seed = s;
        FaultInjector probe(probePlan);
        if (!probe.shouldDropMessage(0, 1) &&
            probe.shouldDropMessage(1, 0)) {
            seed = s;
            break;
        }
    }
    ASSERT_NE(seed, 0u) << "no suitable seed below 1000";
    plan.seed = seed;
    Rig rig(plan);

    auto first = rig.layer->tryRpc(rig.request(7), MsgType::PageResponse);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->arg0, 7u);
    EXPECT_EQ(rig.requestsServed, 1u); // replayed, not re-served
    EXPECT_GE(rig.injector().retries().value("replayed_responses"),
              1u);

    auto second = rig.layer->tryRpc(rig.request(9), MsgType::PageResponse);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->arg0, 9u);
    EXPECT_EQ(rig.requestsServed, 2u);
}

TEST(RpcBackoff, SustainedLinkDelayExhaustsTheBudgetAtExactCharge)
{
    // A Delayed link parks every request past the response timeout
    // (linkDelayCycles > responseTimeoutCycles by construction), so
    // tryRpc walks the full retry ladder exactly as if the wire were
    // dead — the same deterministic charge as the all-dropped case —
    // while the transport holds the messages instead of losing them.
    FaultPlan plan;
    Rig rig(plan);
    const RpcPolicy &pol = rig.layer->rpcPolicy();
    ASSERT_GT(plan.linkDelayCycles, pol.responseTimeoutCycles);

    rig.machine->setLinkState(0, 1, LinkState::Delayed);

    Cycles before = rig.machine->node(0).cycles();
    auto resp = rig.layer->tryRpc(rig.request(7), MsgType::PageResponse);
    Cycles spent = rig.machine->node(0).cycles() - before;

    EXPECT_FALSE(resp.has_value());
    Cycles expect = pol.maxAttempts * pol.responseTimeoutCycles;
    for (unsigned a = 1; a < pol.maxAttempts; ++a)
        expect += pol.backoffForAttempt(a);
    EXPECT_EQ(spent, expect);
    EXPECT_EQ(rig.injector().retries().value("timeouts"),
              pol.maxAttempts);
    EXPECT_EQ(rig.injector().retries().value("attempts"),
              pol.maxAttempts - 1u);
    EXPECT_EQ(rig.injector().retries().value("gave_up"), 1u);
    EXPECT_EQ(rig.injector().partition().value("msgs_parked"),
              pol.maxAttempts);
    EXPECT_EQ(rig.requestsServed, 0u);

    // Once the receiver's clock crosses the release point, the parked
    // retries arrive in order: the first is served, the rest hit the
    // reply cache — the RPC already gave up, so the stale answers go
    // nowhere.
    rig.machine->stall(1,
                       plan.linkDelayCycles + pol.responseTimeoutCycles);
    rig.layer->dispatchPending(1);
    EXPECT_EQ(rig.requestsServed, 1u);
    EXPECT_EQ(rig.injector().retries().value("replayed_responses"),
              pol.maxAttempts - 1u);
}

TEST(RpcBackoff, SustainedDelayChargeIsIdenticalAcrossRuns)
{
    // The delay path must replay bit-identically: two fresh rigs walk
    // the same ladder to the same clocks and counters.
    auto once = []() {
        FaultPlan plan;
        Rig rig(plan);
        rig.machine->setLinkState(0, 1, LinkState::Delayed);
        Cycles before = rig.machine->node(0).cycles();
        auto resp =
            rig.layer->tryRpc(rig.request(7), MsgType::PageResponse);
        EXPECT_FALSE(resp.has_value());
        return std::vector<std::uint64_t>{
            rig.machine->node(0).cycles() - before,
            rig.injector().retries().value("timeouts"),
            rig.injector().retries().value("attempts"),
            rig.injector().retries().value("gave_up"),
            rig.injector().partition().value("msgs_parked"),
        };
    };
    EXPECT_EQ(once(), once());
}
