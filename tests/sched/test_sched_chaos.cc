/**
 * @file
 * Scheduler chaos tests: work stealing racing node crashes and
 * network partitions, at the house seeds {3, 11, 29}.
 *
 * The invariants under fault are the recovery design's:
 *
 *  - fused: a dead node's run queue lives in coherent memory, so the
 *    recovery hook drains every queued item to the survivor — nothing
 *    queued is lost, everything executes exactly once.
 *  - Popcorn: the dead node's queue was its private memory; queued
 *    items are lost (and counted), never double-executed.
 *  - partitions only break the *message* steal path: fused steals
 *    ride coherent memory straight through a severed link, Popcorn
 *    steals fail cleanly (steals_unreachable) and the victim works
 *    off its own backlog.
 */

#include <gtest/gtest.h>

#include <memory>

#include "stramash/fault/crash.hh"
#include "stramash/sched/scheduler.hh"

using namespace stramash;

namespace
{

constexpr std::uint64_t chaosSeeds[] = {3, 11, 29};

std::unique_ptr<System>
makeSystem(OsDesign design, std::size_t nodes)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.crash.enabled = true;
    cfg.topology =
        TopologySpec::alternating(nodes, MemoryModel::Shared);
    return std::make_unique<System>(cfg);
}

/**
 * Seeded skewed submission: every item lands on victimNode (a fully
 * pathological hand layout), with a seed-varied count and weight, so
 * the other nodes start idle and steal rounds actually fire.
 */
std::uint64_t
submitSkewed(Scheduler &sched, System &sys, std::uint64_t seed,
             NodeId victimNode)
{
    Rng rng(seed, 0x5eed);
    std::uint64_t items = 60 + rng.below(40);
    for (std::uint64_t i = 0; i < items; ++i) {
        WorkItem item;
        item.tag = i;
        item.weight = 1000 + rng.below(2000);
        std::uint64_t weight = item.weight;
        item.fn = [&sys, weight](NodeId node) {
            sys.machine().stall(node, weight);
        };
        sched.submitTo(victimNode, std::move(item));
    }
    return items;
}

} // namespace

TEST(SchedChaos, FusedCrashDrainsTheQueueAndLosesNothing)
{
    for (std::uint64_t seed : chaosSeeds) {
        auto sys = makeSystem(OsDesign::FusedKernel, 4);
        Scheduler sched(*sys, SchedConfig{});
        std::uint64_t items = submitSkewed(sched, *sys, seed, 1);

        // Spread part of the backlog, then the loaded node dies and
        // a survivor declares it (declaration is what runs recovery).
        sched.stealRound();
        std::uint64_t before = sched.itemsExecuted();
        sys->crashManager()->declareDead(1, 0);
        EXPECT_EQ(sched.queueDepth(1), 0u) << "seed " << seed;
        EXPECT_GE(sched.stats().value("queue_items_drained"), 1u)
            << "seed " << seed;

        sched.runInline();
        // Exactly-once across the crash: everything queued anywhere
        // still executed, nothing twice.
        EXPECT_EQ(sched.itemsExecuted(), items) << "seed " << seed;
        EXPECT_GE(sched.itemsExecuted(), before) << "seed " << seed;
        EXPECT_EQ(sched.totalQueued(), 0u) << "seed " << seed;
    }
}

TEST(SchedChaos, PopcornCrashLosesExactlyTheDeadQueue)
{
    for (std::uint64_t seed : chaosSeeds) {
        auto sys = makeSystem(OsDesign::MultipleKernel, 4);
        Scheduler sched(*sys, SchedConfig{});
        std::uint64_t items = submitSkewed(sched, *sys, seed, 1);

        // Some items escape to thieves first; exactly what is still
        // queued on the victim at declaration time is lost.
        sched.stealRound();
        std::uint64_t doomed = sched.queueDepth(1);
        EXPECT_LT(doomed, items) << "seed " << seed;
        sys->crashManager()->declareDead(1, 0);
        EXPECT_EQ(sched.stats().value("queue_items_lost"), doomed)
            << "seed " << seed;

        sched.runInline();
        EXPECT_EQ(sched.itemsExecuted(), items - doomed)
            << "seed " << seed;
        EXPECT_EQ(sched.totalQueued(), 0u) << "seed " << seed;
    }
}

TEST(SchedChaos, FusedStealsRideThroughAPartition)
{
    for (std::uint64_t seed : chaosSeeds) {
        auto sys = makeSystem(OsDesign::FusedKernel, 4);
        Scheduler sched(*sys, SchedConfig{});
        std::uint64_t items = submitSkewed(sched, *sys, seed, 0);

        // Sever every message link out of the loaded node. Fused
        // steals are loads and stores in coherent memory — the
        // partition is invisible to them.
        for (NodeId n = 1; n < 4; ++n)
            sys->severLink(0, n);
        std::uint64_t msgs = sys->messagesSent();
        sched.stealRound();
        EXPECT_GE(sched.stats().value("steals_succeeded"), 1u)
            << "seed " << seed;
        EXPECT_EQ(sys->messagesSent(), msgs) << "seed " << seed;

        sched.runInline();
        EXPECT_EQ(sched.itemsExecuted(), items) << "seed " << seed;
    }
}

TEST(SchedChaos, PopcornStealsFailCleanlyAcrossAPartition)
{
    for (std::uint64_t seed : chaosSeeds) {
        auto sys = makeSystem(OsDesign::MultipleKernel, 4);
        Scheduler sched(*sys, SchedConfig{});
        std::uint64_t items = submitSkewed(sched, *sys, seed, 0);

        for (NodeId n = 1; n < 4; ++n)
            sys->severLink(0, n);
        sched.stealRound();
        // Every attempted steal from the isolated victim burned its
        // RPC retries and gave up; no items moved.
        EXPECT_EQ(sched.stats().value("steals_succeeded"), 0u)
            << "seed " << seed;
        EXPECT_GE(sched.stats().value("steals_unreachable"), 1u)
            << "seed " << seed;

        // The victim is not dead — it works off its own backlog and
        // the run still completes everything.
        sched.runInline();
        EXPECT_EQ(sched.itemsExecuted(), items) << "seed " << seed;
    }
}
