/**
 * @file
 * Scheduler unit tests: placement policies, run-queue mechanics, the
 * two steal paths, and dead-node queue draining.
 */

#include <gtest/gtest.h>

#include <memory>

#include "stramash/fault/crash.hh"
#include "stramash/sched/scheduler.hh"

using namespace stramash;

namespace
{

std::unique_ptr<System>
makeSystem(OsDesign design, std::size_t nodes,
           bool crashEnabled = false)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.crash.enabled = crashEnabled;
    cfg.topology =
        TopologySpec::alternating(nodes, MemoryModel::Shared);
    return std::make_unique<System>(cfg);
}

WorkItem
burnItem(System &sys, std::uint64_t tag, std::uint64_t weight)
{
    WorkItem item;
    item.tag = tag;
    item.weight = weight;
    item.fn = [&sys, weight](NodeId node) {
        sys.machine().stall(node, weight);
    };
    return item;
}

} // namespace

TEST(SchedPlacement, PinAlwaysWins)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 4);
    SchedConfig sc;
    sc.policy = PlacementPolicy::LeastLoaded;
    Scheduler sched(*sys, sc);

    PlacementHints hints;
    hints.pin = 2;
    EXPECT_EQ(sched.place(hints), 2u);
    EXPECT_EQ(sched.offloadTarget(0, hints), 2u);
    EXPECT_EQ(sched.stats().value("placed_pin"), 1u);
}

TEST(SchedPlacement, AffinityRoundRobinsAndHonoursIsa)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 4);
    SchedConfig sc;
    sc.policy = PlacementPolicy::IsaAffinity;
    Scheduler sched(*sys, sc);

    // No ISA preference: plain round-robin, so four placements cover
    // all four nodes in order — the identity layout the differential
    // tests rely on.
    PlacementHints any;
    for (NodeId expect = 0; expect < 4; ++expect)
        EXPECT_EQ(sched.place(any), expect);

    // ISA preference: only nodes running that ISA are eligible.
    PlacementHints x86;
    x86.preferIsa = sys->kernel(0).isa();
    for (int i = 0; i < 4; ++i) {
        NodeId n = sched.place(x86);
        EXPECT_EQ(sys->kernel(n).isa(), *x86.preferIsa);
    }
}

TEST(SchedPlacement, LeastLoadedPicksTheIdleNode)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 4);
    Scheduler sched(*sys, SchedConfig{});

    // Load up nodes 0..2; node 3 stays idle.
    for (NodeId n = 0; n < 3; ++n)
        sys->machine().stall(n, 100000);
    PlacementHints hints;
    EXPECT_EQ(sched.place(hints), 3u);

    // Queued-but-unexecuted weight counts as load too.
    sched.submitTo(3, burnItem(*sys, 1, 500000));
    EXPECT_NE(sched.place(hints), 3u);
}

TEST(SchedPlacement, CostModelChargesTheMove)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    SchedConfig sc;
    sc.policy = PlacementPolicy::CostModel;
    sc.migrationChargeCycles = 8000;
    sc.refillCyclesPerLine = 40;
    Scheduler sched(*sys, sc);

    // Tiny imbalance: moving cannot pay for itself.
    sys->machine().stall(0, 1000);
    PlacementHints small;
    small.footprintBytes = 64 * 1024;
    EXPECT_EQ(sched.offloadTarget(0, small), 0u);
    EXPECT_GE(sched.stats().value("offload_cost_stay"), 1u);

    // Huge imbalance: the benefit clears the charge + refill.
    sys->machine().stall(0, 10000000);
    EXPECT_EQ(sched.offloadTarget(0, small), 1u);
    EXPECT_GE(sched.stats().value("offload_cost_move"), 1u);
}

TEST(SchedPlacement, AffinityOffloadMatchesMigrateToNext)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 4, true);
    SchedConfig sc;
    sc.policy = PlacementPolicy::IsaAffinity;
    Scheduler sched(*sys, sc);

    PlacementHints hints;
    for (NodeId from = 0; from < 4; ++from)
        EXPECT_EQ(sched.offloadTarget(from, hints), (from + 1) % 4);

    // With the cyclic successor dead, the hop skips it — the same
    // next-alive scan App::migrateToNext runs.
    sys->killNode(1);
    EXPECT_EQ(sched.offloadTarget(0, hints), 2u);
}

TEST(SchedQueues, RunInlineExecutesEverythingOnce)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 4);
    Scheduler sched(*sys, SchedConfig{});

    for (std::uint64_t i = 0; i < 100; ++i)
        sched.submitTo(static_cast<NodeId>(i % 3),
                       burnItem(*sys, i, 1000));
    EXPECT_EQ(sched.totalQueued(), 100u);

    Cycles spent = sched.runInline();
    EXPECT_GT(spent, 0u);
    EXPECT_EQ(sched.totalQueued(), 0u);
    EXPECT_EQ(sched.itemsExecuted(), 100u);
    EXPECT_EQ(sched.stats().value("items_executed"), 100u);
}

TEST(SchedQueues, SubmitToDeadNodeSlidesToNextAlive)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 4, true);
    Scheduler sched(*sys, SchedConfig{});
    sys->killNode(1);
    EXPECT_EQ(sched.submitTo(1, burnItem(*sys, 7, 100)), 2u);
    EXPECT_EQ(sched.queueDepth(2), 1u);
}

TEST(SchedSteal, VictimKeepsAtLeastOneItem)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    SchedConfig sc;
    sc.stealBatch = 8;
    Scheduler sched(*sys, sc);

    // Two items on node 0, none on node 1: a steal round may move at
    // most one (depth - 1).
    sched.submitTo(0, burnItem(*sys, 1, 1000));
    sched.submitTo(0, burnItem(*sys, 2, 1000));
    sched.stealRound();
    EXPECT_EQ(sched.queueDepth(0), 1u);
    EXPECT_EQ(sched.queueDepth(1), 1u);
    EXPECT_EQ(sched.stats().value("steal_items"), 1u);
}

TEST(SchedSteal, FusedStealIsMessageFree)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    Scheduler sched(*sys, SchedConfig{});
    for (std::uint64_t i = 0; i < 10; ++i)
        sched.submitTo(0, burnItem(*sys, i, 1000));

    std::uint64_t msgs = sys->messagesSent();
    sched.stealRound();
    EXPECT_GE(sched.stats().value("steals_succeeded"), 1u);
    EXPECT_EQ(sys->messagesSent(), msgs);
}

TEST(SchedSteal, PopcornStealPaysTheRpc)
{
    auto sys = makeSystem(OsDesign::MultipleKernel, 2);
    Scheduler sched(*sys, SchedConfig{});
    for (std::uint64_t i = 0; i < 10; ++i)
        sched.submitTo(0, burnItem(*sys, i, 1000));

    std::uint64_t msgs = sys->messagesSent();
    sched.stealRound();
    EXPECT_GE(sched.stats().value("steals_succeeded"), 1u);
    EXPECT_GE(sys->messagesSent(), msgs + 2);
}

TEST(SchedSteal, StealingDisabledMeansQueuesStayPut)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    SchedConfig sc;
    sc.stealing = false;
    Scheduler sched(*sys, sc);
    for (std::uint64_t i = 0; i < 10; ++i)
        sched.submitTo(0, burnItem(*sys, i, 1000));
    sched.stealRound();
    EXPECT_EQ(sched.queueDepth(0), 10u);
    EXPECT_EQ(sched.stats().value("steals_attempted"), 0u);
}

TEST(SchedDrain, FusedSurvivorAdoptsDeadNodesQueue)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2, true);
    Scheduler sched(*sys, SchedConfig{});
    for (std::uint64_t i = 0; i < 8; ++i)
        sched.submitTo(1, burnItem(*sys, i, 1000));

    // Recovery (and with it the scheduler's drain hook) runs at
    // declaration, not at the kill itself.
    sys->crashManager()->declareDead(1, 0);
    EXPECT_EQ(sched.queueDepth(1), 0u);
    EXPECT_EQ(sched.queueDepth(0), 8u);
    EXPECT_EQ(sched.stats().value("queue_items_drained"), 8u);

    sched.runInline();
    EXPECT_EQ(sched.itemsExecuted(), 8u);
}

TEST(SchedDrain, PopcornLosesTheDeadQueue)
{
    auto sys = makeSystem(OsDesign::MultipleKernel, 2, true);
    Scheduler sched(*sys, SchedConfig{});
    for (std::uint64_t i = 0; i < 8; ++i)
        sched.submitTo(1, burnItem(*sys, i, 1000));

    sys->crashManager()->declareDead(1, 0);
    EXPECT_EQ(sched.queueDepth(0), 0u);
    EXPECT_EQ(sched.queueDepth(1), 0u);
    EXPECT_EQ(sched.stats().value("queue_items_lost"), 8u);
    sched.runInline();
    EXPECT_EQ(sched.itemsExecuted(), 0u);
}

TEST(SchedSystem, SpawnPlacedGoesThroughTheScheduler)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 4);
    SchedConfig sc;
    sc.policy = PlacementPolicy::IsaAffinity;
    Scheduler sched(*sys, sc);
    ASSERT_EQ(sys->placer(), &sched);

    // Round-robin placement through System::spawnPlaced and the
    // hint-taking App constructor.
    NodeId chosen = invalidNode;
    Pid p = sys->spawnPlaced(PlacementHints{}, &chosen);
    EXPECT_EQ(chosen, 0u);
    EXPECT_EQ(sys->whereIs(p), 0u);
    App app(*sys, PlacementHints{});
    EXPECT_EQ(app.where(), 1u);

    // Without a placer the same APIs fall back to the pin (node 0).
    sys->setPlacer(nullptr);
    PlacementHints pinned;
    pinned.pin = 3;
    App pinnedApp(*sys, pinned);
    EXPECT_EQ(pinnedApp.where(), 3u);
}

TEST(SchedStats, DepthHistogramSamplesEachStealRound)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    Scheduler sched(*sys, SchedConfig{});
    sched.submitTo(0, burnItem(*sys, 1, 100));
    sched.stealRound();
    const Histogram &h = sched.stats().histogram(
        "runqueue_depth", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
    EXPECT_EQ(h.count(), 2u); // one sample per usable node
}
