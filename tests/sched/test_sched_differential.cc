/**
 * @file
 * Differential tests: the scheduler is a refactor, not a behavior
 * change. With stealing disabled and placement pinned (or the
 * affinity policy, whose choices replicate the historical hard-coded
 * layout), every scheduler-driven run must be bit-identical to the
 * hand-placed run it replaced — runtime, per-node clocks, workload
 * checksums, and the exported stats JSON.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "stramash/sched/scheduler.hh"
#include "stramash/workloads/npb.hh"
#include "stramash/workloads/sharded_kvstore.hh"

using namespace stramash;

namespace
{

std::unique_ptr<System>
makeSystem(OsDesign design, std::size_t nodes)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology =
        TopologySpec::alternating(nodes, MemoryModel::Shared);
    return std::make_unique<System>(cfg);
}

SchedConfig
compatSchedConfig()
{
    // The compatibility configuration the differential contract is
    // about: affinity placement (replicates hard-coded layouts and
    // migrateToNext hops), no stealing.
    SchedConfig sc;
    sc.policy = PlacementPolicy::IsaAffinity;
    sc.stealing = false;
    return sc;
}

/** Everything a run can perturb. */
struct Fingerprint
{
    Cycles runtime = 0;
    std::uint64_t messages = 0;
    std::vector<std::uint64_t> perNode;
    std::uint64_t checksum = 0;
    bool verified = false;
    std::string statsJson;

    bool
    operator==(const Fingerprint &o) const
    {
        return runtime == o.runtime && messages == o.messages &&
               perNode == o.perNode && checksum == o.checksum &&
               verified == o.verified && statsJson == o.statsJson;
    }
};

void
captureMachine(System &sys, Fingerprint &fp)
{
    fp.runtime = sys.runtime();
    fp.messages = sys.messagesSent();
    Machine &m = sys.machine();
    for (NodeId n = 0; n < m.nodeCount(); ++n) {
        fp.perNode.push_back(m.node(n).cycles());
        fp.perNode.push_back(m.node(n).icount());
        fp.perNode.push_back(m.ipisReceived(n));
    }
}

std::string
slurpStatsJson(System &sys, const std::string &tag)
{
    std::string path =
        testing::TempDir() + "sched_diff_" + tag + ".json";
    EXPECT_TRUE(sys.writeStatsJson(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

Fingerprint
kvRun(OsDesign design, bool viaScheduler, const std::string &tag)
{
    auto sys = makeSystem(design, 4);
    Fingerprint fp;
    {
        // Scoped: the scheduler unregisters its stat group on
        // destruction, so both variants export the same group set
        // and the stats JSON documents are comparable verbatim.
        std::unique_ptr<Scheduler> sched;
        ShardedKvConfig kcfg;
        if (viaScheduler) {
            sched = std::make_unique<Scheduler>(*sys,
                                                compatSchedConfig());
            kcfg.placer = sched.get();
        }
        ShardedKvStore store(*sys, kcfg);
        if (viaScheduler) {
            // Affinity round-robin reproduces the identity layout.
            for (NodeId s = 0; s < 4; ++s)
                EXPECT_EQ(store.serverNode(s), s);
        }
        store.populate();
        store.run(600);
        fp.verified = store.verify();
        fp.checksum = store.requestsServed() ^
                      (store.crossShardRequests() << 20);
    }
    captureMachine(*sys, fp);
    fp.statsJson = slurpStatsJson(*sys, tag);
    return fp;
}

Fingerprint
npbRun(OsDesign design, const std::string &kernel, bool viaScheduler,
       const std::string &tag)
{
    auto sys = makeSystem(design, 4);
    Fingerprint fp;
    {
        std::unique_ptr<Scheduler> sched;
        NpbConfig nc;
        nc.iterations = 3;
        nc.problemBytes = 256 * 1024;
        if (viaScheduler) {
            sched = std::make_unique<Scheduler>(*sys,
                                                compatSchedConfig());
            nc.placer = sched.get();
        }
        App app(*sys, 0);
        NpbResult r = makeNpbKernel(kernel)->run(app, nc);
        fp.verified = r.verified;
        fp.checksum = r.checksum;
    }
    captureMachine(*sys, fp);
    fp.statsJson = slurpStatsJson(*sys, tag);
    return fp;
}

} // namespace

class SchedDifferential
    : public ::testing::TestWithParam<OsDesign>
{
};

TEST_P(SchedDifferential, ShardedKvstoreIsBitIdentical)
{
    OsDesign d = GetParam();
    Fingerprint hand = kvRun(d, false, "kv_hand");
    Fingerprint sched = kvRun(d, true, "kv_sched");
    EXPECT_TRUE(hand.verified);
    EXPECT_EQ(hand.runtime, sched.runtime);
    EXPECT_EQ(hand.perNode, sched.perNode);
    EXPECT_EQ(hand.messages, sched.messages);
    EXPECT_EQ(hand.checksum, sched.checksum);
    EXPECT_EQ(hand.statsJson, sched.statsJson);
    EXPECT_TRUE(hand == sched);
}

TEST_P(SchedDifferential, NpbOffloadHopsAreBitIdentical)
{
    OsDesign d = GetParam();
    for (const char *name : {"is", "cg"}) {
        std::string kernel(name);
        Fingerprint hand = npbRun(d, kernel, false,
                                  "npb_hand_" + kernel);
        Fingerprint sched = npbRun(d, kernel, true,
                                   "npb_sched_" + kernel);
        EXPECT_TRUE(hand.verified) << kernel;
        EXPECT_EQ(hand.checksum, sched.checksum) << kernel;
        EXPECT_EQ(hand.runtime, sched.runtime) << kernel;
        EXPECT_EQ(hand.perNode, sched.perNode) << kernel;
        EXPECT_EQ(hand.statsJson, sched.statsJson) << kernel;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchedDifferentialBothDesigns, SchedDifferential,
    ::testing::Values(OsDesign::FusedKernel,
                      OsDesign::MultipleKernel),
    [](const ::testing::TestParamInfo<OsDesign> &info) {
        return info.param == OsDesign::FusedKernel ? "Fused"
                                                   : "Popcorn";
    });

TEST(SchedDeterminism, StealingRunIsBitIdenticalAcrossHostThreads)
{
    auto runOnce = [](unsigned threads) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.transport = Transport::SharedMemory;
        cfg.cachePluginEnabled = false;
        cfg.topology =
            TopologySpec::alternating(4, MemoryModel::Shared);
        cfg.hostThreads = threads;
        System sys(cfg);
        SchedConfig sc;
        sc.runBlock = 8;
        Scheduler sched(sys, sc);
        // Skewed hand layout: node 0 gets most of the work.
        for (std::uint64_t i = 0; i < 200; ++i) {
            WorkItem item;
            item.tag = i;
            item.weight = 5000;
            item.fn = [&sys](NodeId node) {
                sys.machine().stall(node, 5000);
                sys.machine().retire(node, 700);
            };
            sched.submitTo(i % 5 == 0 ? (i % 4) : 0,
                           std::move(item));
        }
        Fingerprint fp;
        fp.checksum = sched.runToIdle();
        fp.checksum ^= sched.stats().value("steals_succeeded") << 40;
        fp.checksum ^= sched.stats().value("steal_items") << 50;
        captureMachine(sys, fp);
        EXPECT_EQ(sched.itemsExecuted(), 200u)
            << threads << " threads";
        EXPECT_GT(sched.stats().value("steals_succeeded"), 0u)
            << threads << " threads";
        return fp;
    };

    Fingerprint one = runOnce(1);
    EXPECT_TRUE(one == runOnce(2));
    EXPECT_TRUE(one == runOnce(4));
}
