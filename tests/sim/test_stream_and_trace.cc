#include <gtest/gtest.h>

#include "stramash/common/units.hh"
#include "stramash/sim/machine.hh"

using namespace stramash;

TEST(StreamAccess, OverlapsMissLatency)
{
    Machine serial(MachineConfig::paperPair(MemoryModel::Shared));
    Machine pipelined(MachineConfig::paperPair(MemoryModel::Shared));
    // 4 KiB cold streaming store: serial pays full miss latency per
    // line; MLP=8 overlaps.
    Cycles s = serial.streamAccess(0, AccessType::Store, 0x100000,
                                   pageSize, 1);
    Cycles p = pipelined.streamAccess(0, AccessType::Store, 0x100000,
                                      pageSize, 8);
    EXPECT_GT(s, p * 6);
    // Serial equals the plain per-line access cost.
    Machine plain(MachineConfig::paperPair(MemoryModel::Shared));
    Cycles d =
        plain.dataAccess(0, AccessType::Store, 0x100000, pageSize);
    EXPECT_EQ(s, d);
}

TEST(StreamAccess, HitsAreNotDiscounted)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    m.streamAccess(0, AccessType::Load, 0x100000, pageSize, 8);
    // Warm pass: every line hits L1, so MLP has nothing to overlap.
    Cycles warm = m.streamAccess(0, AccessType::Load, 0x100000,
                                 pageSize, 8);
    EXPECT_EQ(warm, 64 * latencyProfile(CoreModel::XeonGold).l1);
}

TEST(StreamAccess, ConfigDefaultApplies)
{
    MachineConfig cfg = MachineConfig::paperPair(MemoryModel::Shared);
    cfg.streamMlp = 1;
    Machine serialByDefault(cfg);
    Machine pipelined(MachineConfig::paperPair(MemoryModel::Shared));
    Cycles s = serialByDefault.streamAccess(0, AccessType::Store,
                                            0x200000, pageSize);
    Cycles p = pipelined.streamAccess(0, AccessType::Store, 0x200000,
                                      pageSize);
    EXPECT_GT(s, p);
}

TEST(StreamAccess, FunctionalModeFlat)
{
    MachineConfig cfg = MachineConfig::paperPair(MemoryModel::Shared);
    cfg.cachePluginEnabled = false;
    Machine m(cfg);
    Cycles c = m.streamAccess(0, AccessType::Store, 0x100000,
                              pageSize);
    EXPECT_EQ(c, latencyProfile(CoreModel::XeonGold).l1);
}

TEST(TraceHooks, ObserveAccessesAndRetires)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    std::uint64_t accesses = 0, bytes = 0;
    ICount retired = 0;
    m.setTraceHooks(
        [&](NodeId n, AccessType, Addr, unsigned size) {
            EXPECT_EQ(n, 0u);
            ++accesses;
            bytes += size;
        },
        [&](NodeId, ICount c) { retired += c; });

    m.dataAccess(0, AccessType::Load, 0x1000, 64);
    m.streamAccess(0, AccessType::Store, 0x2000, 128);
    m.retire(0, 55);

    EXPECT_EQ(accesses, 2u);
    EXPECT_EQ(bytes, 192u);
    EXPECT_EQ(retired, 55u);

    m.clearTraceHooks();
    m.dataAccess(0, AccessType::Load, 0x1000, 64);
    EXPECT_EQ(accesses, 2u); // hook gone
}

TEST(BackInvalidate, ChargedWhenSharedLlcEvictsOtherNodesLine)
{
    // Tiny shared LLC so evictions are easy to force.
    MachineConfig cfg = MachineConfig::paperPair(
        MemoryModel::FullyShared, 64 * 1024);
    Machine m(cfg);
    ASSERT_TRUE(m.caches().hasSharedLlc());

    // Node 1 caches a line; node 0 then floods the shared LLC.
    m.dataAccess(1, AccessType::Load, 0x0, 8);
    std::uint64_t before =
        m.caches().nodeStats(0).value("back_invalidates");
    for (Addr a = 0x100000; a < 0x100000 + (256 << 10); a += 64)
        m.dataAccess(0, AccessType::Load, a, 8);
    // Node 1's copy was back-invalidated when its line left the LLC.
    EXPECT_GT(m.caches().nodeStats(0).value("back_invalidates"),
              before);
    EXPECT_FALSE(m.caches().hierarchy(1).holds(0x0));
}
