#include <gtest/gtest.h>

#include "stramash/common/rng.hh"
#include "stramash/sim/baremetal_ref.hh"

using namespace stramash;

TEST(BareMetalRef, ConfigsExist)
{
    for (const auto &cfg :
         {BareMetalConfig::smallArm(), BareMetalConfig::bigArm(),
          BareMetalConfig::smallX86(), BareMetalConfig::bigX86()}) {
        EXPECT_FALSE(cfg.name.empty());
        EXPECT_GT(cfg.baseCpi, 0.5);
        EXPECT_LE(cfg.baseCpi, 1.0);
        EXPECT_GT(cfg.stallExposure, 0.5);
        EXPECT_LE(cfg.stallExposure, 1.0);
    }
}

TEST(BareMetalRef, RetireAccumulates)
{
    BareMetalRef ref(BareMetalConfig::bigX86());
    ref.retire(1000);
    auto c = ref.counters();
    EXPECT_EQ(c.instructions, 1000u);
    EXPECT_EQ(c.cycles,
              static_cast<Cycles>(
                  1000 * BareMetalConfig::bigX86().baseCpi));
}

TEST(BareMetalRef, MemoryStallsPartiallyHidden)
{
    BareMetalRef a(BareMetalConfig::bigX86());
    a.retire(100);
    Cycles base = a.counters().cycles;
    a.access(AccessType::Load, 0x10000); // cold miss
    Cycles withMiss = a.counters().cycles;
    const auto &prof = latencyProfile(CoreModel::XeonGold);
    Cycles stall = withMiss - base;
    EXPECT_LT(stall, prof.mem); // partially hidden
    EXPECT_GT(stall, prof.mem / 2);
}

TEST(BareMetalRef, L1HitsAreFree)
{
    BareMetalRef a(BareMetalConfig::bigX86());
    a.access(AccessType::Load, 0x10000);
    Cycles after = a.counters().cycles;
    a.access(AccessType::Load, 0x10000); // L1 hit
    EXPECT_EQ(a.counters().cycles, after);
}

TEST(BareMetalRef, IpcAboveOneForCacheFriendlyCode)
{
    // With an L1-resident working set, the superscalar base CPI
    // dominates and IPC exceeds 1 once cold misses amortise.
    BareMetalRef a(BareMetalConfig::bigX86());
    Rng rng(5);
    for (int i = 0; i < 200000; ++i) {
        a.retire(8);
        a.access(rng.chance(0.3) ? AccessType::Store
                                 : AccessType::Load,
                 0x10000 + (i % 512) * 64);
    }
    EXPECT_GT(a.counters().ipc(), 1.0);
}

TEST(BareMetalRef, ResetClearsEverything)
{
    BareMetalRef a(BareMetalConfig::smallArm());
    a.retire(10);
    a.access(AccessType::Load, 0x1000);
    a.reset();
    EXPECT_EQ(a.counters().instructions, 0u);
    EXPECT_EQ(a.counters().cycles, 0u);
}

TEST(BareMetalRef, SmallArmHasNoL3)
{
    // The A72 profile's L3 latency is 0, so its reference machine
    // must run without an L3 level (misses go to memory).
    BareMetalRef a(BareMetalConfig::smallArm());
    a.access(AccessType::Load, 0x2000);
    Cycles first = a.counters().cycles;
    EXPECT_GT(first, 0u);
}

TEST(PerfCounters, IpcHandlesZeroCycles)
{
    PerfCounters c;
    EXPECT_EQ(c.ipc(), 0.0);
}
