/**
 * @file
 * Unit tests for the epoch-based parallel host executor
 * (sim/parallel_executor): lookahead bound, staged cross-lane event
 * ordering, adaptive window advance, the per-epoch access guard, and
 * the cross-thread chain runner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "stramash/common/epoch_guard.hh"
#include "stramash/sim/machine.hh"
#include "stramash/sim/parallel_executor.hh"

using namespace stramash;

namespace
{

MachineConfig
topoConfig(std::size_t nodes)
{
    MachineConfig cfg = MachineConfig::fromTopology(
        TopologySpec::alternating(nodes, MemoryModel::Shared));
    cfg.cachePluginEnabled = false;
    return cfg;
}

/** Retires a fixed instruction budget per node, a block per epoch. */
class RetireDriver final : public EpochDriver
{
  public:
    RetireDriver(Machine &m, std::uint64_t perNode,
                 std::uint64_t perEpoch)
        : machine_(m), left_(m.nodeCount(), perNode),
          perEpoch_(perEpoch)
    {
    }

    bool
    step(NodeId node, const EpochCtx &) override
    {
        std::uint64_t n = std::min(left_[node], perEpoch_);
        if (n)
            machine_.retire(node, n);
        left_[node] -= n;
        return left_[node] != 0;
    }

  private:
    Machine &machine_;
    std::vector<std::uint64_t> left_;
    std::uint64_t perEpoch_;
};

} // namespace

TEST(ParallelExecutor, LookaheadIsTheMinCrossNodeIpiLatency)
{
    Machine machine(topoConfig(4));
    Cycles expect = machine.ipiCycles(0);
    for (NodeId n = 1; n < machine.nodeCount(); ++n)
        expect = std::min(expect, machine.ipiCycles(n));
    EXPECT_EQ(machine.minCrossNodeLookahead(), expect);
    EXPECT_GT(expect, 0u);

    HostExecutor exec(machine, 1);
    RetireDriver driver(machine, 10, 10);
    exec.run(driver);
    EXPECT_EQ(exec.lookahead(), expect);
    EXPECT_GE(exec.epochsRun(), 1u);
}

TEST(ParallelExecutor, ThreadCountClampsToNodeCount)
{
    Machine machine(topoConfig(2));
    HostExecutor exec(machine, 16);
    EXPECT_EQ(exec.threads(), 2u);
    EXPECT_EQ(exec.laneOf(0), 0u);
    EXPECT_EQ(exec.laneOf(1), 1u);
}

TEST(ParallelExecutor, MultiEpochRunRetiresEverything)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        Machine machine(topoConfig(4));
        HostExecutor exec(machine, threads);
        RetireDriver driver(machine, 1000, 64);
        exec.run(driver);
        // 1000 instructions in 64-instruction epoch blocks: 16 epochs
        // of work, identical clocks whatever the thread count.
        EXPECT_GE(exec.epochsRun(), 16u);
        for (NodeId n = 0; n < machine.nodeCount(); ++n)
            EXPECT_EQ(machine.node(n).icount(), 1000u)
                << "node " << n << " threads " << threads;
    }
}

namespace
{

/**
 * Node 0 stages events to the other nodes in its first step; the
 * driver records the order and epoch each one is delivered in.
 */
class StageDriver final : public EpochDriver
{
  public:
    struct Delivery
    {
        std::uint64_t epoch;
        NodeId dst;
        std::uint64_t payload;
        Cycles ready;
    };

    bool
    step(NodeId node, const EpochCtx &ctx) override
    {
        if (node != 0 || staged_)
            return false;
        staged_ = true;
        LaneContext *lc = tlsLaneContext();
        EXPECT_NE(lc, nullptr);
        Cycles base = ctx.windowEnd;
        // Out of staging order on purpose: sorted delivery must be
        // (ready, src, seq) — payload 2 first, then 1, then 3 (same
        // ready as 1, staged later).
        lc->events.push_back(
            {base + 5, node, 1, lc->nextSeq++, 0, 1, 0, 0});
        lc->events.push_back(
            {base + 1, node, 2, lc->nextSeq++, 0, 2, 0, 0});
        lc->events.push_back(
            {base + 5, node, 1, lc->nextSeq++, 0, 3, 0, 0});
        // Far beyond the next window: the adaptive horizon must jump
        // to it instead of spinning through empty epochs forever.
        far_ = base + 500 * 1000 * 1000;
        lc->events.push_back(
            {far_, node, 2, lc->nextSeq++, 0, 4, 0, 0});
        return false;
    }

    void
    deliver(NodeId node, const StagedEvent &ev) override
    {
        deliveries.push_back({epoch_, node, ev.a, ev.ready});
    }

    Cycles
    nextEventAt(NodeId) const override
    {
        return kNoPendingEvent;
    }

    void
    atBarrier(std::uint64_t epoch) override
    {
        // Record the epoch about to start: deliveries observed after
        // barrier k happen in epoch k + 1.
        epoch_ = epoch + 1;
    }

    std::vector<Delivery> deliveries;
    Cycles far_ = 0;

  private:
    bool staged_ = false;
    std::uint64_t epoch_ = 0;
};

} // namespace

TEST(ParallelExecutor, StagedEventsDeliverSortedAndAfterTheEdge)
{
    Machine machine(topoConfig(3));
    HostExecutor exec(machine, 1);
    StageDriver driver;
    exec.run(driver);

    ASSERT_EQ(driver.deliveries.size(), 4u);
    // Sorted by (ready, src, seq): payloads 2, 1, 3, then the far one.
    EXPECT_EQ(driver.deliveries[0].payload, 2u);
    EXPECT_EQ(driver.deliveries[1].payload, 1u);
    EXPECT_EQ(driver.deliveries[2].payload, 3u);
    EXPECT_EQ(driver.deliveries[3].payload, 4u);
    // Nothing staged in epoch e is visible before the e+1 window.
    for (const auto &d : driver.deliveries)
        EXPECT_GE(d.epoch, 1u) << "payload " << d.payload;
    // The far event must not cost ~far/lookahead empty epochs: the
    // window jumps to the earliest pending event plus lookahead.
    EXPECT_LT(exec.epochsRun(), 32u);
}

TEST(ParallelExecutor, RunChainKeepsOrderAcrossThreads)
{
    Machine machine(topoConfig(4));
    HostExecutor exec(machine, 2);
    std::vector<int> order;
    std::vector<std::thread::id> tids;
    std::vector<std::function<void()>> items;
    for (int i = 0; i < 6; ++i)
        items.push_back([&, i] {
            order.push_back(i);
            tids.push_back(std::this_thread::get_id());
            machine.retire(0, 10);
            machine.retire(3, 10);
        });
    exec.runChain(items);

    ASSERT_EQ(order.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(order[i], i);
    // Items rotate across lanes, so with 2 threads both host threads
    // must have executed some of the chain.
    EXPECT_GT(std::count(tids.begin(), tids.end(), tids[0]), 0);
    EXPECT_LT(std::count(tids.begin(), tids.end(), tids[0]), 6);
    // Every item owned every node: all charges were direct.
    EXPECT_EQ(machine.node(0).icount(), 60u);
    EXPECT_EQ(machine.node(3).icount(), 60u);
}

TEST(ParallelExecutor, CrashFiresAtTheBarrierDeterministically)
{
    auto runOnce = [](unsigned threads) {
        MachineConfig cfg = topoConfig(4);
        FaultPlan plan;
        plan.crashNode = 1;
        plan.crashAtCycle = 2000;
        cfg.faultPlan = plan;
        Machine machine(cfg);
        HostExecutor exec(machine, threads);
        RetireDriver driver(machine, 100000, 4096);
        exec.run(driver);
        std::vector<std::uint64_t> out;
        for (NodeId n = 0; n < machine.nodeCount(); ++n) {
            out.push_back(machine.node(n).icount());
            out.push_back(machine.node(n).cycles());
            out.push_back(machine.node(n).alive() ? 1 : 0);
        }
        return out;
    };
    auto one = runOnce(1);
    auto two = runOnce(2);
    auto four = runOnce(4);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, four);
    // And the crash actually happened.
    EXPECT_EQ(one[1 * 3 + 2], 0u);
}

namespace
{

[[noreturn]] void
guardTripBody()
{
    EpochAccessGuard guard;
    guard.setActive(true);
    guard.check("test resource");
    std::thread second([&] { guard.check("test resource"); });
    second.join();
    // The second thread panics before join returns; reaching here
    // means the guard failed to trip.
    std::abort();
}

} // namespace

TEST(EpochAccessGuardDeath, SecondThreadInSameEpochTrips)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // The panic fires on a secondary thread, so the process may die
    // by exit(1) or by abort depending on teardown interleaving —
    // only the diagnostic is load-bearing.
    EXPECT_DEATH(guardTripBody(), "epoch guard");
}

TEST(EpochAccessGuard, FenceHandsOverBetweenEpochs)
{
    EpochAccessGuard guard;
    guard.setActive(true);
    guard.check("test resource");
    guard.check("test resource"); // same thread: fine
    guard.fence();
    std::thread second([&] { guard.check("test resource"); });
    second.join(); // new epoch: another thread may claim it
    guard.setActive(false);
}
