/**
 * @file
 * Differential determinism suite for the parallel host executor: the
 * parallel paths must be *bit-identical* to the sequential reference
 * — every per-node clock, instruction count, IPI count, message
 * counter, slot tag and the full stats JSON — for every topology
 * size, OS design and host-thread count.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "stramash/load/parallel_service.hh"
#include "stramash/sim/parallel_executor.hh"
#include "stramash/trace/json_stats.hh"
#include "stramash/workloads/npb.hh"
#include "stramash/workloads/sharded_kvstore.hh"

using namespace stramash;

namespace
{

std::string
statsString(System &sys)
{
    JsonStatsExporter ex;
    sys.forEachStatGroup([&](const StatGroup &g) { ex.add(g); });
    std::ostringstream os;
    ex.write(os);
    return os.str();
}

std::unique_ptr<System>
makeKvSystem(OsDesign design, std::size_t nodes, unsigned threads)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology =
        TopologySpec::alternating(nodes, MemoryModel::Shared);
    cfg.hostThreads = threads;
    return std::make_unique<System>(cfg);
}

/** Everything a kv batch can possibly perturb. */
struct KvFingerprint
{
    bool verified = false;
    Cycles spent = 0;
    std::uint64_t requests = 0;
    std::uint64_t crossShard = 0;
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    std::vector<std::uint64_t> perNode;
    std::string statsJson;

    bool
    operator==(const KvFingerprint &o) const
    {
        return verified == o.verified && spent == o.spent &&
               requests == o.requests && crossShard == o.crossShard &&
               msgs == o.msgs && bytes == o.bytes &&
               perNode == o.perNode && statsJson == o.statsJson;
    }
};

KvFingerprint
kvFingerprint(OsDesign design, std::size_t nodes,
              std::uint64_t requests, unsigned threads)
{
    auto sys = makeKvSystem(design, nodes, threads);
    ShardedKvStore store(*sys);
    store.populate();
    KvFingerprint fp;
    fp.spent = threads == 0
                   ? store.run(requests)
                   : store.runParallel(requests, sys->hostExecutor());
    fp.verified = store.verify();
    fp.requests = store.requestsServed();
    fp.crossShard = store.crossShardRequests();
    fp.msgs = sys->msg().messagesSent();
    fp.bytes = sys->msg().bytesSent();
    Machine &m = sys->machine();
    for (NodeId n = 0; n < m.nodeCount(); ++n) {
        fp.perNode.push_back(m.node(n).cycles());
        fp.perNode.push_back(m.node(n).icount());
        fp.perNode.push_back(m.node(n).memCycles());
        fp.perNode.push_back(m.ipisReceived(n));
    }
    fp.statsJson = statsString(*sys);
    return fp;
}

} // namespace

/**
 * The core determinism claim: sequential run() (threads == 0 below)
 * and runParallel() at 1, 2 and 4 host threads all produce the same
 * bits, across topology sizes and both OS designs.
 */
class KvParallelDifferential
    : public testing::TestWithParam<std::tuple<OsDesign, std::size_t>>
{
};

TEST_P(KvParallelDifferential, BitIdenticalAcrossThreadCounts)
{
    auto [design, nodes] = GetParam();
    const std::uint64_t kRequests = 1200;
    KvFingerprint ref = kvFingerprint(design, nodes, kRequests, 0);
    ASSERT_TRUE(ref.verified);
    ASSERT_EQ(ref.requests, kRequests);
    for (unsigned threads : {1u, 2u, 4u}) {
        KvFingerprint par =
            kvFingerprint(design, nodes, kRequests, threads);
        EXPECT_TRUE(par == ref)
            << "threads=" << threads << " nodes=" << nodes
            << " diverged from the sequential reference";
        // Pinpoint what diverged when the blanket check fails.
        EXPECT_EQ(par.spent, ref.spent) << "threads=" << threads;
        EXPECT_EQ(par.perNode, ref.perNode) << "threads=" << threads;
        EXPECT_EQ(par.msgs, ref.msgs) << "threads=" << threads;
        EXPECT_EQ(par.crossShard, ref.crossShard)
            << "threads=" << threads;
        EXPECT_EQ(par.statsJson, ref.statsJson)
            << "threads=" << threads;
        EXPECT_TRUE(par.verified) << "threads=" << threads;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KvParallelDifferential,
    testing::Combine(testing::Values(OsDesign::FusedKernel,
                                     OsDesign::MultipleKernel),
                     testing::Values(std::size_t(2), std::size_t(4),
                                     std::size_t(8))),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ==
                                   OsDesign::FusedKernel
                               ? "fused"
                               : "popcorn") +
               std::to_string(std::get<1>(info.param)) + "n";
    });

/**
 * The NPB figure-9 slice run through HostExecutor::runChain must
 * match inline execution exactly: the chain only moves work across
 * host threads, never across simulated time.
 */
TEST(NpbParallelDifferential, ChainMatchesInlineExecution)
{
    NpbConfig ncfg;
    ncfg.iterations = 2;
    ncfg.problemBytes = 256 * 1024;
    ncfg.migrate = true;
    ncfg.seed = 7;

    auto runAll = [&](unsigned threads) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.transport = Transport::SharedMemory;
        cfg.hostThreads = threads;
        System sys(cfg);
        std::vector<NpbResult> results;
        if (threads == 0) {
            for (const auto &name : npbKernelNames()) {
                App app(sys, 0);
                results.push_back(
                    makeNpbKernel(name)->run(app, ncfg));
            }
        } else {
            std::vector<std::function<void()>> items;
            results.resize(npbKernelNames().size());
            for (std::size_t i = 0; i < npbKernelNames().size(); ++i)
                items.push_back([&, i] {
                    App app(sys, 0);
                    results[i] = makeNpbKernel(npbKernelNames()[i])
                                     ->run(app, ncfg);
                });
            sys.hostExecutor().runChain(items);
        }
        std::vector<std::uint64_t> fp;
        for (const auto &r : results) {
            fp.push_back(r.verified ? 1 : 0);
            fp.push_back(r.checksum);
        }
        Machine &m = sys.machine();
        for (NodeId n = 0; n < m.nodeCount(); ++n) {
            fp.push_back(m.node(n).cycles());
            fp.push_back(m.node(n).icount());
            fp.push_back(m.ipisReceived(n));
        }
        return fp;
    };

    auto inline_ = runAll(0);
    auto chain1 = runAll(1);
    auto chain2 = runAll(2);
    EXPECT_EQ(inline_, chain1);
    EXPECT_EQ(inline_, chain2);
    // All four kernels verified.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(inline_[2 * i], 1u) << npbKernelNames()[i];
}

/**
 * The parallel open-loop tail service is a *new* deterministic
 * algorithm (the classic KvFrontEnd couples clocks per request and
 * stays sequential-only), so its contract is thread-count invariance:
 * identical OpenLoopReport, per-node clocks, message counters and
 * stats JSON at hostThreads = 1, 2 and 4.
 */
class TailParallelDifferential : public testing::TestWithParam<OsDesign>
{
};

TEST_P(TailParallelDifferential, ReportInvariantAcrossThreadCounts)
{
    OsDesign design = GetParam();

    struct TailFingerprint
    {
        OpenLoopReport rep;
        std::vector<std::uint64_t> perNode;
        std::uint64_t msgs = 0;
        std::uint64_t bytes = 0;
        std::string statsJson;
    };

    auto tailFingerprint = [&](unsigned threads) {
        auto sys = makeKvSystem(design, 8, threads);
        ShardedKvStore store(*sys);
        store.populate();
        ParallelKvService service(*sys, store);
        OpenLoopConfig lcfg;
        lcfg.requests = 1500;
        lcfg.arrival.ratePerMcycle = 15.0;
        lcfg.keys.numKeys = store.keysPerShard() * 8;
        TailFingerprint fp;
        fp.rep = service.run(lcfg, sys->hostExecutor());
        Machine &m = sys->machine();
        for (NodeId n = 0; n < m.nodeCount(); ++n) {
            fp.perNode.push_back(m.node(n).cycles());
            fp.perNode.push_back(m.node(n).icount());
            fp.perNode.push_back(m.node(n).memCycles());
            fp.perNode.push_back(m.ipisReceived(n));
        }
        fp.msgs = sys->msg().messagesSent();
        fp.bytes = sys->msg().bytesSent();
        fp.statsJson = statsString(*sys);
        return fp;
    };

    TailFingerprint ref = tailFingerprint(1);
    EXPECT_EQ(ref.rep.offered, 1500u);
    EXPECT_EQ(ref.rep.served, ref.rep.accepted);
    EXPECT_GT(ref.rep.served, 0u);
    EXPECT_GT(ref.rep.p99, 0.0);
    if (design == OsDesign::FusedKernel) {
        EXPECT_EQ(ref.msgs, 0u);
    } else {
        // Two modeled messages per cross-shard request.
        EXPECT_GT(ref.msgs, 0u);
        EXPECT_EQ(ref.msgs % 2, 0u);
    }

    for (unsigned threads : {2u, 4u}) {
        TailFingerprint par = tailFingerprint(threads);
        EXPECT_EQ(par.rep.offered, ref.rep.offered) << threads;
        EXPECT_EQ(par.rep.accepted, ref.rep.accepted) << threads;
        EXPECT_EQ(par.rep.shed, ref.rep.shed) << threads;
        EXPECT_EQ(par.rep.served, ref.rep.served) << threads;
        EXPECT_EQ(par.rep.batches, ref.rep.batches) << threads;
        EXPECT_EQ(par.rep.meanLatency, ref.rep.meanLatency) << threads;
        EXPECT_EQ(par.rep.p50, ref.rep.p50) << threads;
        EXPECT_EQ(par.rep.p99, ref.rep.p99) << threads;
        EXPECT_EQ(par.rep.p999, ref.rep.p999) << threads;
        EXPECT_EQ(par.rep.lastCompletion, ref.rep.lastCompletion)
            << threads;
        EXPECT_EQ(par.rep.lastArrival, ref.rep.lastArrival) << threads;
        EXPECT_EQ(par.perNode, ref.perNode) << threads;
        EXPECT_EQ(par.msgs, ref.msgs) << threads;
        EXPECT_EQ(par.bytes, ref.bytes) << threads;
        EXPECT_EQ(par.statsJson, ref.statsJson) << threads;
    }
}

INSTANTIATE_TEST_SUITE_P(Designs, TailParallelDifferential,
                         testing::Values(OsDesign::FusedKernel,
                                         OsDesign::MultipleKernel),
                         [](const auto &info) {
                             return info.param == OsDesign::FusedKernel
                                        ? std::string("fused")
                                        : std::string("popcorn");
                         });

TEST(HostExecutorConfig, SystemBuildsExecutorSizedToConfig)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.cachePluginEnabled = false;
    cfg.topology = TopologySpec::alternating(4, MemoryModel::Shared);
    cfg.hostThreads = 2;
    System sys(cfg);
    EXPECT_EQ(sys.hostExecutor().threads(), 2u);
    EXPECT_EQ(&sys.hostExecutor(), &sys.hostExecutor());
}
