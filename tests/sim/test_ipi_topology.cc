#include <gtest/gtest.h>

#include "stramash/sim/ipi_topology.hh"

using namespace stramash;

class IpiModels : public testing::TestWithParam<IpiTopologyModel>
{
};

TEST_P(IpiModels, MatrixShapeAndDiagonal)
{
    const auto &m = GetParam();
    auto mat = m.latencyMatrixNs(4, 1);
    ASSERT_EQ(mat.size(), m.numCores);
    for (unsigned f = 0; f < m.numCores; ++f) {
        ASSERT_EQ(mat[f].size(), m.numCores);
        EXPECT_EQ(mat[f][f], 0.0);
        for (unsigned t = 0; t < m.numCores; ++t) {
            if (f != t) {
                EXPECT_GT(mat[f][t], 0.0);
            }
        }
    }
}

TEST_P(IpiModels, CrossingBoundariesCostsMore)
{
    const auto &m = GetParam();
    Rng rng(7);
    // Average many samples to wash out jitter.
    auto avg = [&](unsigned f, unsigned t) {
        double s = 0;
        for (int i = 0; i < 200; ++i)
            s += m.measureNs(f, t, rng);
        return s / 200;
    };
    // Same cluster vs different cluster.
    double same = avg(0, 1);
    double cross = avg(0, m.coresPerCluster);
    EXPECT_GT(cross, same);
    // Different socket (when the machine has two).
    unsigned perSocket = m.coresPerCluster * m.clustersPerSocket;
    if (perSocket < m.numCores) {
        double socket = avg(0, perSocket);
        EXPECT_GT(socket, cross);
    }
}

TEST_P(IpiModels, DeterministicForFixedSeed)
{
    const auto &m = GetParam();
    auto a = m.latencyMatrixNs(3, 42);
    auto b = m.latencyMatrixNs(3, 42);
    EXPECT_EQ(a, b);
    auto c = m.latencyMatrixNs(3, 43);
    EXPECT_NE(a, c);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, IpiModels,
    testing::Values(IpiTopologyModel::smallArm(),
                    IpiTopologyModel::bigArm(),
                    IpiTopologyModel::smallX86(),
                    IpiTopologyModel::bigX86()),
    [](const auto &info) {
        std::string n = info.param.name;
        for (auto &ch : n) {
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return n;
    });

TEST(IpiTopology, BigMachinesAverageAboutTwoMicroseconds)
{
    // §9.1.1: "The average IPI latency is about 2 us in large
    // machine pairs, and we have used this value as our simulated
    // cross-ISA IPI cost."
    for (const auto &m :
         {IpiTopologyModel::bigArm(), IpiTopologyModel::bigX86()}) {
        auto mat = m.latencyMatrixNs(8, 99);
        double mean = IpiTopologyModel::meanOffDiagonalNs(mat);
        EXPECT_GT(mean, 1500.0) << m.name;
        EXPECT_LT(mean, 2600.0) << m.name;
    }
}

TEST(IpiTopology, SmallMachinesAreSubMicrosecond)
{
    for (const auto &m : {IpiTopologyModel::smallArm(),
                          IpiTopologyModel::smallX86()}) {
        auto mat = m.latencyMatrixNs(8, 99);
        double mean = IpiTopologyModel::meanOffDiagonalNs(mat);
        EXPECT_LT(mean, 1200.0) << m.name;
    }
}

TEST(IpiTopologyDeath, CoreOutOfRange)
{
    auto m = IpiTopologyModel::smallArm();
    Rng rng(1);
    EXPECT_DEATH(m.measureNs(0, 99, rng), "out of range");
}
