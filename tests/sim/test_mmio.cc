#include <gtest/gtest.h>

#include "stramash/common/units.hh"
#include "stramash/sim/mmio.hh"

using namespace stramash;

namespace
{

class MmioTest : public testing::Test
{
  protected:
    MmioTest()
        : machine_(MachineConfig::paperPair(MemoryModel::Shared)),
          bus_(machine_),
          console_(0, mmioBase_) // owned by the x86 instance
    {
        bus_.attach(&console_);
    }

    // The 3-4 GiB hole is the natural MMIO home (paper Fig. 4).
    static constexpr Addr mmioBase_ = 3_GiB + 0x1000;

    Machine machine_;
    MmioBus bus_;
    ConsoleDevice console_;
};

} // namespace

TEST_F(MmioTest, ClaimsOnlyItsWindow)
{
    EXPECT_TRUE(bus_.claims(mmioBase_));
    EXPECT_TRUE(bus_.claims(mmioBase_ + pageSize - 1));
    EXPECT_FALSE(bus_.claims(mmioBase_ + pageSize));
    EXPECT_FALSE(bus_.claims(0x1000));
}

TEST_F(MmioTest, DeviceSemanticsWork)
{
    for (char c : std::string("stramash"))
        bus_.write(0, mmioBase_, static_cast<std::uint64_t>(c));
    EXPECT_EQ(console_.output(), "stramash");
    EXPECT_EQ(bus_.read(0, mmioBase_ + 8), 8u);
}

TEST_F(MmioTest, AllNodesCanAccessAllDevices)
{
    // Paper §3: "All MMIO devices are accessible by all processors".
    bus_.write(1, mmioBase_, 'A'); // the Arm instance lacks the device
    bus_.write(0, mmioBase_, 'B');
    EXPECT_EQ(console_.output(), "AB");
}

TEST_F(MmioTest, RemoteAccessPaysRedirection)
{
    Cycles x86Before = machine_.node(0).cycles();
    bus_.write(0, mmioBase_, 'x');
    Cycles localCost = machine_.node(0).cycles() - x86Before;

    Cycles armBefore = machine_.node(1).cycles();
    bus_.write(1, mmioBase_, 'y');
    Cycles remoteCost = machine_.node(1).cycles() - armBefore;

    EXPECT_GT(remoteCost, localCost);
    EXPECT_EQ(bus_.stats().value("local"), 1u);
    EXPECT_EQ(bus_.stats().value("redirected"), 1u);
}

TEST_F(MmioTest, MultipleDevicesRoute)
{
    ConsoleDevice armConsole(1, mmioBase_ + 2 * pageSize);
    bus_.attach(&armConsole);
    bus_.write(0, mmioBase_, 'p');
    bus_.write(0, mmioBase_ + 2 * pageSize, 'q');
    EXPECT_EQ(console_.output(), "p");
    EXPECT_EQ(armConsole.output(), "q");
    // x86 owns the first, Arm the second: one redirection.
    EXPECT_EQ(bus_.stats().value("redirected"), 1u);
}

TEST_F(MmioTest, DeathOnOverlappingWindows)
{
    ConsoleDevice overlapping(1, mmioBase_ + 16);
    EXPECT_DEATH(bus_.attach(&overlapping), "overlap");
}

TEST_F(MmioTest, DeathOnDramWindow)
{
    ConsoleDevice inDram(0, 0x100000);
    EXPECT_DEATH(bus_.attach(&inDram), "DRAM");
}

TEST_F(MmioTest, DeathOnUnclaimedAccess)
{
    EXPECT_DEATH(bus_.read(0, 3_GiB + 0x900000), "unclaimed");
}
