#include <gtest/gtest.h>

#include "stramash/common/units.hh"
#include "stramash/sim/machine.hh"

using namespace stramash;

TEST(Machine, PaperPairConfiguration)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    EXPECT_EQ(m.nodeCount(), 2u);
    EXPECT_EQ(m.node(0).isa(), IsaType::X86_64);
    EXPECT_EQ(m.node(1).isa(), IsaType::AArch64);
    EXPECT_EQ(&m.nodeByIsa(IsaType::AArch64), &m.node(1));
}

TEST(Machine, RetireAdvancesIcountAndCycles)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    m.retire(0, 1000);
    EXPECT_EQ(m.node(0).icount(), 1000u);
    EXPECT_EQ(m.node(0).cycles(), 1000u); // fixed IPC = 1
    EXPECT_EQ(m.node(1).icount(), 0u);
}

TEST(Machine, DataAccessChargesCacheLatency)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    Cycles c1 = m.dataAccess(0, AccessType::Load, 0x1000, 8);
    EXPECT_EQ(c1, latencyProfile(CoreModel::XeonGold).mem);
    Cycles c2 = m.dataAccess(0, AccessType::Load, 0x1000, 8);
    EXPECT_EQ(c2, latencyProfile(CoreModel::XeonGold).l1);
    EXPECT_EQ(m.node(0).cycles(), c1 + c2);
    EXPECT_EQ(m.node(0).memCycles(), c1 + c2);
}

TEST(Machine, FunctionalModeSkipsCacheModel)
{
    MachineConfig cfg = MachineConfig::paperPair(MemoryModel::Shared);
    cfg.cachePluginEnabled = false;
    Machine m(cfg);
    // Even a pool access costs only the flat L1 latency.
    Cycles c = m.dataAccess(0, AccessType::Load, 5_GiB, 8);
    EXPECT_EQ(c, latencyProfile(CoreModel::XeonGold).l1);
}

TEST(Machine, CrossIsaIpiCostsTwoMicroseconds)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    // 2 us at the ThunderX2's 2.0 GHz = 4000 cycles.
    EXPECT_EQ(m.ipiCycles(1), 4000u);
    Cycles c = m.sendIpi(0, 1);
    EXPECT_EQ(c, 4000u);
    EXPECT_EQ(m.node(1).cycles(), 4000u);
    EXPECT_EQ(m.node(0).cycles(), 0u);
    EXPECT_EQ(m.ipisReceived(1), 1u);
}

TEST(Machine, RuntimeFormulaSumsNodes)
{
    // The AE formula: Final Runtime = x86 runtime + Arm runtime.
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    m.retire(0, 100);
    m.retire(1, 250);
    EXPECT_EQ(m.totalRuntime(), 350u);
    EXPECT_EQ(m.maxRuntime(), 250u);
}

TEST(Machine, ResetTimingClearsClocksAndCaches)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    m.dataAccess(0, AccessType::Load, 0x1000, 8);
    m.retire(1, 5);
    m.sendIpi(0, 1);
    m.resetTiming();
    EXPECT_EQ(m.totalRuntime(), 0u);
    EXPECT_EQ(m.ipisReceived(1), 0u);
    // Cache flushed: the next access misses again.
    Cycles c = m.dataAccess(0, AccessType::Load, 0x1000, 8);
    EXPECT_EQ(c, latencyProfile(CoreModel::XeonGold).mem);
}

TEST(Machine, ArmRemoteAccessUsesArmLatencies)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Separated));
    // Arm (node 1) touching x86-home memory at 0x1000: remote.
    Cycles c = m.dataAccess(1, AccessType::Load, 0x1000, 8);
    EXPECT_EQ(c, latencyProfile(CoreModel::ThunderX2).remoteMem);
}

TEST(Machine, IsaExpansionVisibleInNode)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    EXPECT_DOUBLE_EQ(m.node(0).isaDesc().instExpansion, 1.0);
    EXPECT_GT(m.node(1).isaDesc().instExpansion, 1.0);
}

TEST(MachineDeath, UnknownNode)
{
    Machine m(MachineConfig::paperPair(MemoryModel::Shared));
    EXPECT_DEATH(m.node(9), "unknown node");
}
