#include <gtest/gtest.h>

#include "stramash/core/app.hh"
#include "stramash/fused/packing.hh"

using namespace stramash;

namespace
{

class PackingTest : public testing::Test
{
  protected:
    PackingTest()
    {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.memoryModel = MemoryModel::Shared;
        sys_ = std::make_unique<System>(cfg);
        app_ = std::make_unique<App>(*sys_, 0);
    }

    /** Touch pages in an interleaved order so frames end up
     *  scattered (two regions allocated alternately). */
    Addr
    scatteredRegion(unsigned pages)
    {
        Addr a = app_->mmap(Addr{pages} * pageSize);
        Addr b = app_->mmap(Addr{pages} * pageSize);
        for (unsigned i = 0; i < pages; ++i) {
            app_->write<std::uint64_t>(a + Addr{i} * pageSize,
                                       i * 7 + 1);
            app_->write<std::uint64_t>(b + Addr{i} * pageSize, 0);
        }
        return a;
    }

    std::unique_ptr<System> sys_;
    std::unique_ptr<App> app_;
};

} // namespace

TEST_F(PackingTest, PacksScatteredPagesContiguously)
{
    Addr region = scatteredRegion(16);
    KernelInstance &k = sys_->kernel(0);
    Task &t = k.task(app_->pid());

    EXPECT_FALSE(vmaIsPacked(k, t, region));
    auto r = packVmaContiguous(k, t, region);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->pagesMoved, 16u);
    EXPECT_EQ(r->pagesSkipped, 0u);
    EXPECT_EQ(r->bytes, 16 * pageSize);
    EXPECT_TRUE(vmaIsPacked(k, t, region));

    // Frames ascend contiguously in VA order.
    Addr expect = r->base;
    for (unsigned i = 0; i < 16; ++i) {
        auto w = t.as->pageTable().walk(region + Addr{i} * pageSize);
        ASSERT_TRUE(w.has_value());
        EXPECT_EQ(w->pte.frame, expect);
        expect += pageSize;
    }
}

TEST_F(PackingTest, ContentSurvivesPacking)
{
    Addr region = scatteredRegion(16);
    KernelInstance &k = sys_->kernel(0);
    Task &t = k.task(app_->pid());
    ASSERT_TRUE(packVmaContiguous(k, t, region).has_value());
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(
            app_->read<std::uint64_t>(region + Addr{i} * pageSize),
            static_cast<std::uint64_t>(i * 7 + 1));
    }
}

TEST_F(PackingTest, OldFramesAreReleased)
{
    Addr region = scatteredRegion(16);
    KernelInstance &k = sys_->kernel(0);
    Task &t = k.task(app_->pid());
    std::uint64_t used = k.palloc().usedPages();
    ASSERT_TRUE(packVmaContiguous(k, t, region).has_value());
    // Same number of data pages before and after (move, not leak).
    EXPECT_EQ(k.palloc().usedPages(), used);
}

TEST_F(PackingTest, PackingIsChargedToTheClock)
{
    Addr region = scatteredRegion(16);
    KernelInstance &k = sys_->kernel(0);
    Task &t = k.task(app_->pid());
    Cycles before = sys_->runtime();
    ASSERT_TRUE(packVmaContiguous(k, t, region).has_value());
    EXPECT_GT(sys_->runtime(), before);
}

TEST_F(PackingTest, RemoteOwnedFramesAreSkipped)
{
    // Pages allocated by the remote kernel (fast-path foreign
    // insertions) must not be moved by the origin's packer.
    Addr region = app_->mmap(8 * pageSize);
    app_->write<std::uint64_t>(region, 1); // origin-owned page
    app_->migrateToNext();
    app_->write<std::uint64_t>(region + pageSize, 2); // remote-owned
    app_->migrateToNext();

    KernelInstance &k = sys_->kernel(0);
    Task &t = k.task(app_->pid());
    auto r = packVmaContiguous(k, t, region);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->pagesMoved, 1u);
    EXPECT_EQ(r->pagesSkipped, 1u);
    // Values intact either way.
    EXPECT_EQ(app_->read<std::uint64_t>(region), 1u);
    EXPECT_EQ(app_->read<std::uint64_t>(region + pageSize), 2u);
}

TEST_F(PackingTest, NoVmaOrNothingResident)
{
    KernelInstance &k = sys_->kernel(0);
    Task &t = k.task(app_->pid());
    EXPECT_FALSE(packVmaContiguous(k, t, 0xdead0000).has_value());
    Addr region = app_->mmap(4 * pageSize); // never touched
    EXPECT_FALSE(packVmaContiguous(k, t, region).has_value());
    EXPECT_TRUE(vmaIsPacked(k, t, region)); // vacuously
}

TEST_F(PackingTest, TranslationsStayCoherentAfterPacking)
{
    // The packer must invalidate stale TLB entries.
    Addr region = scatteredRegion(8);
    KernelInstance &k = sys_->kernel(0);
    Task &t = k.task(app_->pid());
    // Prime the TLB.
    for (unsigned i = 0; i < 8; ++i)
        app_->read<std::uint64_t>(region + Addr{i} * pageSize);
    ASSERT_TRUE(packVmaContiguous(k, t, region).has_value());
    app_->write<std::uint64_t>(region + 3 * pageSize, 0x1234);
    auto w = t.as->pageTable().walk(region + 3 * pageSize);
    ASSERT_TRUE(w.has_value());
    // The write went to the *new* frame.
    EXPECT_EQ(sys_->machine().memory().load<std::uint64_t>(
                  w->pte.frame),
              0x1234u);
}
