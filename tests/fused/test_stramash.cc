#include <gtest/gtest.h>

#include "stramash/core/app.hh"

using namespace stramash;

namespace
{

class StramashTest : public testing::Test
{
  protected:
    StramashTest()
    {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.memoryModel = MemoryModel::Shared;
        cfg.transport = Transport::SharedMemory;
        sys_ = std::make_unique<System>(cfg);
    }

    StramashShared &shared() { return *sys_->stramashState(); }

    std::unique_ptr<System> sys_;
};

} // namespace

TEST_F(StramashTest, RemoteReadSharesOriginFrame)
{
    App app(*sys_, 0);
    Addr buf = app.mmap(8 * pageSize);
    app.write<std::uint64_t>(buf, 0x77);
    app.migrateToNext();

    auto msgs = sys_->messagesSent();
    EXPECT_EQ(app.read<std::uint64_t>(buf), 0x77u);
    // Direct shared-memory fault handling: no messages at all.
    EXPECT_EQ(sys_->messagesSent(), msgs);
    EXPECT_EQ(shared().sharedMappings, 1u);
    EXPECT_EQ(shared().foreignInsertions, 0u);

    // Both page tables point at the same physical frame.
    Pid pid = app.pid();
    auto wo = sys_->kernel(0).task(pid).as->pageTable().walk(buf);
    auto wr = sys_->kernel(1).task(pid).as->pageTable().walk(buf);
    ASSERT_TRUE(wo.has_value());
    ASSERT_TRUE(wr.has_value());
    EXPECT_EQ(wo->pte.frame, wr->pte.frame);
}

TEST_F(StramashTest, RemoteWriteIsImmediatelyVisibleAtOrigin)
{
    App app(*sys_, 0);
    Addr buf = app.mmap(pageSize);
    app.write<std::uint64_t>(buf, 1);
    app.migrateToNext();
    app.write<std::uint64_t>(buf, 2); // same frame, no replication
    app.migrateToNext();
    EXPECT_EQ(app.read<std::uint64_t>(buf), 2u);
    EXPECT_EQ(sys_->replicatedPages(), 0u);
}

TEST_F(StramashTest, FastPathInsertsForeignFormatPte)
{
    App app(*sys_, 0);
    Addr buf = app.mmap(8 * pageSize);
    // Touch one page at the origin so the table chain exists.
    app.write<std::uint64_t>(buf, 1);
    app.migrateToNext();

    auto msgs = sys_->messagesSent();
    // Fresh page in the same leaf table: remote fast path.
    app.write<std::uint64_t>(buf + pageSize, 42);
    EXPECT_EQ(sys_->messagesSent(), msgs); // message-free
    EXPECT_EQ(shared().foreignInsertions, 1u);

    // The origin's page table now has a *tagged* foreign entry the
    // origin can decode through its remote CPU driver.
    Pid pid = app.pid();
    auto w = sys_->kernel(0).task(pid).as->pageTable().walk(
        buf + pageSize);
    ASSERT_TRUE(w.has_value());
    std::uint64_t raw = sys_->machine().memory().load<std::uint64_t>(
        w->pteAddr);
    EXPECT_TRUE(raw & foreignFormatTag);
    // And the frame came from the *remote* kernel's memory (Arm
    // local memory starts at 1.5 GiB).
    EXPECT_GE(w->pte.frame, Addr{1536} << 20);
}

TEST_F(StramashTest, MigrateBackReconcilesForeignPtes)
{
    App app(*sys_, 0);
    Addr buf = app.mmap(8 * pageSize);
    app.write<std::uint64_t>(buf, 1);
    app.migrateToNext();
    app.write<std::uint64_t>(buf + pageSize, 42);
    ASSERT_EQ(shared().foreignMapped[app.pid()].size(), 1u);

    app.migrateToNext(); // back to origin: reconcile runs
    EXPECT_TRUE(shared().foreignMapped[app.pid()].empty());
    EXPECT_EQ(sys_->kernel(0).stats().value("ptes_reconciled"), 1u);

    Pid pid = app.pid();
    auto w = sys_->kernel(0).task(pid).as->pageTable().walk(
        buf + pageSize);
    std::uint64_t raw = sys_->machine().memory().load<std::uint64_t>(
        w->pteAddr);
    EXPECT_FALSE(raw & foreignFormatTag);
    // The origin reads the remote-allocated page through the now
    // native PTE.
    EXPECT_EQ(app.read<std::uint64_t>(buf + pageSize), 42u);
}

TEST_F(StramashTest, SlowPathUsesOneMessageRound)
{
    App app(*sys_, 0);
    // A region never touched at the origin: no table chain at all.
    Addr buf = app.mmap(8 * pageSize);
    app.migrateToNext();

    auto msgs = sys_->messagesSent();
    auto slow = shared().slowPathFaults;
    app.write<std::uint64_t>(buf, 7);
    EXPECT_EQ(shared().slowPathFaults, slow + 1);
    // Request + response, then the retried fault takes the fast
    // path (no further messages).
    EXPECT_EQ(sys_->messagesSent() - msgs, 2u);
    EXPECT_EQ(shared().foreignInsertions, 1u);

    // Neighbouring pages now fast-path with no messages.
    msgs = sys_->messagesSent();
    app.write<std::uint64_t>(buf + pageSize, 8);
    EXPECT_EQ(sys_->messagesSent(), msgs);
    EXPECT_EQ(shared().foreignInsertions, 2u);
}

TEST_F(StramashTest, RemoteVmaWalkCopiesVmaWithoutMessages)
{
    App app(*sys_, 0);
    Addr buf = app.mmap(4 * pageSize);
    app.write<std::uint64_t>(buf, 1);
    app.migrateToNext();
    auto msgs = sys_->messagesSent();
    app.read<std::uint64_t>(buf);
    EXPECT_EQ(sys_->messagesSent(), msgs);
    // The remote kernel now holds a copy of the VMA.
    const Vma *v =
        sys_->kernel(1).task(app.pid()).as->vmas().find(buf);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->start, pageBase(buf));
}

TEST_F(StramashTest, FutexDirectAccessAndSingleIpi)
{
    App app(*sys_, 0);
    Addr page = app.mmap(pageSize);
    app.write<std::uint32_t>(page, 1);

    // Park the origin-side waiter.
    EXPECT_TRUE(app.futexWait(page, 1));
    EXPECT_EQ(sys_->kernel(0).futexTable().waiters(page), 1u);

    // Wake from the remote side: zero messages, exactly one IPI.
    app.migrateToNext();
    auto msgs = sys_->messagesSent();
    auto ipis = sys_->machine().ipisReceived(0);
    EXPECT_EQ(app.futexWake(page, 1), 1u);
    EXPECT_EQ(sys_->messagesSent(), msgs);
    EXPECT_EQ(sys_->machine().ipisReceived(0), ipis + 1);
    EXPECT_EQ(sys_->kernel(0).futexTable().waiters(page), 0u);
}

TEST_F(StramashTest, FutexRemoteWaitEnqueuesAtOriginDirectly)
{
    App app(*sys_, 0);
    Addr page = app.mmap(pageSize);
    app.write<std::uint32_t>(page, 5);
    app.migrateToNext();
    auto msgs = sys_->messagesSent();
    EXPECT_TRUE(app.futexWait(page, 5));
    EXPECT_EQ(sys_->messagesSent(), msgs); // direct list access
    EXPECT_EQ(sys_->kernel(0).futexTable().waiters(page), 1u);
    EXPECT_FALSE(app.futexWait(page, 6)); // value check still works
}

TEST_F(StramashTest, FusedNamespacesIdentical)
{
    // §6.6: same mount/PID/net/UTS/user/cgroup namespaces and the
    // same CPU list on every kernel instance.
    EXPECT_TRUE(sys_->kernel(0).namespaces() ==
                sys_->kernel(1).namespaces());
}

TEST_F(StramashTest, MigrationUsesMailboxNotPayload)
{
    App app(*sys_, 0);
    sys_->kernel(0).task(app.pid()).state.args[2] = 0x99;
    auto bytesBefore = sys_->msg().bytesSent();
    app.migrate(1);
    // One header-only message: the state travelled through shared
    // memory, not the message payload.
    EXPECT_EQ(sys_->msg().bytesSent() - bytesBefore,
              Message::headerBytes);
    EXPECT_EQ(sys_->kernel(1).task(app.pid()).state.args[2], 0x99u);
}

TEST_F(StramashTest, TaskExitReleasesRemotePages)
{
    auto &remotePalloc = sys_->kernel(1).palloc();
    std::uint64_t usedBefore = remotePalloc.usedPages();
    {
        App app(*sys_, 0);
        Addr buf = app.mmap(4 * pageSize);
        app.write<std::uint64_t>(buf, 1);
        app.migrateToNext();
        app.write<std::uint64_t>(buf + pageSize, 2); // remote alloc
        EXPECT_GT(remotePalloc.usedPages(), usedBefore);
    }
    // App destructor exits the task everywhere; the remote kernel
    // released the pages it allocated (§6.4's recycling rule).
    EXPECT_EQ(remotePalloc.usedPages(), usedBefore);
}
