#include <gtest/gtest.h>

#include "stramash/common/units.hh"
#include "stramash/fused/fused_vas.hh"

using namespace stramash;

class FusedVasTest : public testing::TestWithParam<MemoryModel>
{
  protected:
    FusedVasTest()
        : map_(PhysMap::paperDefault(GetParam())), vas_(map_)
    {
    }

    PhysMap map_;
    FusedVas vas_;
};

TEST_P(FusedVasTest, RoundTrip)
{
    for (Addr pa : {Addr{0x1000}, 2_GiB, 5_GiB, 8_GiB - pageSize}) {
        Addr kv = vas_.physToKv(pa);
        EXPECT_GE(kv, FusedVas::directMapBase);
        EXPECT_EQ(vas_.kvToPhys(kv), pa);
    }
}

TEST_P(FusedVasTest, AlignmentInvariantHolds)
{
    // The fused kernel virtual address space: every kernel sees the
    // other's memory at the same kernel virtual address.
    EXPECT_TRUE(vas_.checkAlignment());
}

TEST_P(FusedVasTest, DeathOnNonDramPhys)
{
    EXPECT_DEATH(vas_.physToKv(3_GiB + 0x100), "non-DRAM");
}

TEST_P(FusedVasTest, DeathOnBadKernelVirtual)
{
    EXPECT_DEATH(vas_.kvToPhys(0x1000), "not a direct-map");
    EXPECT_DEATH(vas_.kvToPhys(FusedVas::directMapBase + 3_GiB),
                 "beyond DRAM");
}

INSTANTIATE_TEST_SUITE_P(AllModels, FusedVasTest,
                         testing::Values(MemoryModel::Separated,
                                         MemoryModel::Shared,
                                         MemoryModel::FullyShared),
                         [](const auto &info) {
                             return memoryModelName(info.param);
                         });
