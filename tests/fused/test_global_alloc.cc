#include <gtest/gtest.h>

#include "stramash/common/units.hh"
#include "stramash/fused/global_alloc.hh"

using namespace stramash;

namespace
{

class GmaTest : public testing::Test
{
  protected:
    GmaTest()
        : machine_(MachineConfig::paperPair(MemoryModel::Shared)),
          layer_(machine_),
          k0_(machine_, 0, layer_),
          k1_(machine_, 1, layer_)
    {
        GmaConfig cfg;
        cfg.blockSize = 256_MiB;
        gma_ = std::make_unique<GlobalMemoryAllocator>(
            machine_, std::vector<KernelInstance *>{&k0_, &k1_}, cfg);
    }

    Machine machine_;
    TcpMessageLayer layer_;
    KernelInstance k0_;
    KernelInstance k1_;
    std::unique_ptr<GlobalMemoryAllocator> gma_;
};

} // namespace

TEST_F(GmaTest, PoolCarvedIntoBlocks)
{
    // 4 GiB pool at 256 MiB blocks = 16 blocks (paper §9.2.7 setup).
    EXPECT_EQ(gma_->freeBlocks(), 16u);
    EXPECT_EQ(gma_->blocksOwnedBy(0), 0u);
}

TEST_F(GmaTest, OnlineGrowsKernelAndCharges)
{
    std::uint64_t pagesBefore = k0_.palloc().totalPages();
    auto blocks = gma_->freeBlocks();
    AddrRange block{4_GiB, 4_GiB + 256_MiB};
    Cycles cost = gma_->onlineBlock(k0_, block);
    EXPECT_GT(cost, 0u);
    EXPECT_EQ(k0_.palloc().totalPages(),
              pagesBefore + 256_MiB / pageSize);
    EXPECT_EQ(gma_->freeBlocks(), blocks - 1);
    EXPECT_EQ(gma_->blocksOwnedBy(0), 1u);
}

TEST_F(GmaTest, OfflineReturnsBlockToPool)
{
    AddrRange block{4_GiB, 4_GiB + 256_MiB};
    gma_->onlineBlock(k0_, block);
    Cycles cost = gma_->offlineBlock(k0_, block);
    EXPECT_GT(cost, 0u);
    EXPECT_EQ(gma_->blocksOwnedBy(0), 0u);
    EXPECT_EQ(gma_->freeBlocks(), 16u);
    EXPECT_FALSE(k0_.palloc().manages(4_GiB));
}

TEST_F(GmaTest, OfflineCostsMoreThanOnline)
{
    // Table 4: offlining (isolation pass) dominates onlining.
    AddrRange block{4_GiB, 4_GiB + 256_MiB};
    Cycles online = gma_->onlineBlock(k0_, block);
    Cycles offline = gma_->offlineBlock(k0_, block);
    EXPECT_GT(offline, online);
}

TEST_F(GmaTest, CostScalesWithBlockSize)
{
    // Table 4's page sweep: cost grows with the number of pages.
    AddrRange small{4_GiB, 4_GiB + 256_MiB};
    Cycles c1 = gma_->onlineBlock(k0_, small);
    Cycles c1off = gma_->offlineBlock(k0_, small);

    GmaConfig big;
    big.blockSize = 1_GiB;
    GlobalMemoryAllocator gma2(
        machine_, std::vector<KernelInstance *>{&k0_, &k1_}, big);
    AddrRange bigBlock{4_GiB, 5_GiB};
    Cycles c2 = gma2.onlineBlock(k0_, bigBlock);
    Cycles c2off = gma2.offlineBlock(k0_, bigBlock);
    EXPECT_GT(c2, 3 * c1);
    EXPECT_GT(c2off, 3 * c1off);
}

TEST_F(GmaTest, LowMemoryAssignsFreeBlock)
{
    EXPECT_TRUE(gma_->onLowMemory(k0_));
    EXPECT_EQ(gma_->blocksOwnedBy(0), 1u);
}

TEST_F(GmaTest, LowMemoryEvictsFromLessPressuredKernel)
{
    // Hand every block to k1 (which has low pressure), then let k0
    // beg: the allocator must migrate one block over.
    for (const auto &kv : gma_->ownedBlocks(1)) {
        (void)kv;
    }
    while (gma_->freeBlocks() > 0)
        ASSERT_TRUE(gma_->onLowMemory(k1_));
    EXPECT_EQ(gma_->blocksOwnedBy(1), 16u);

    // Raise k0's pressure above k1's.
    auto &pa = k0_.palloc();
    while (pa.pressure() < 0.75)
        ASSERT_TRUE(pa.allocPage().has_value());

    EXPECT_TRUE(gma_->onLowMemory(k0_));
    EXPECT_EQ(gma_->blocksOwnedBy(0), 1u);
    EXPECT_EQ(gma_->blocksOwnedBy(1), 15u);
    EXPECT_EQ(gma_->stats().value("blocks_migrated"), 1u);
}

TEST_F(GmaTest, OfflineWithLivePagesNeedsRemap)
{
    AddrRange block{4_GiB, 4_GiB + 256_MiB};
    gma_->onlineBlock(k0_, block);
    // Drain k0's boot memory so allocations land in the block...
    // simpler: allocate until we obtain a frame inside the block.
    Addr inBlock = 0;
    std::vector<Addr> extra;
    while (true) {
        auto p = k0_.palloc().allocPage();
        ASSERT_TRUE(p.has_value());
        if (block.contains(*p)) {
            inBlock = *p;
            break;
        }
        extra.push_back(*p);
    }
    // Return the boot-memory frames so evacuation has somewhere to
    // move the live page.
    for (Addr p : extra)
        k0_.palloc().freePage(p);
    machine_.memory().store<std::uint64_t>(inBlock, 0x1234);

    // Without a remap callback: refused.
    EXPECT_EQ(gma_->offlineBlock(k0_, block), 0u);

    // With remap: the live frame is evacuated and content moves.
    Addr newFrame = 0;
    Cycles cost = gma_->offlineBlock(
        k0_, block, [&](Addr oldPa, Addr newPa) {
            EXPECT_EQ(oldPa, inBlock);
            newFrame = newPa;
        });
    EXPECT_GT(cost, 0u);
    ASSERT_NE(newFrame, 0u);
    EXPECT_FALSE(block.contains(newFrame));
    EXPECT_EQ(machine_.memory().load<std::uint64_t>(newFrame),
              0x1234u);
    EXPECT_EQ(gma_->stats().value("pages_evacuated"), 1u);
}

TEST_F(GmaTest, ArmAndX86ChargeDifferently)
{
    // Same mechanism, different cores: the per-page sweep lands on
    // different clocks (Table 4's x86/Arm asymmetry).
    AddrRange b0{4_GiB, 4_GiB + 256_MiB};
    AddrRange b1{4_GiB + 256_MiB, 4_GiB + 512_MiB};
    Cycles x86 = gma_->onlineBlock(k0_, b0);
    Cycles arm = gma_->onlineBlock(k1_, b1);
    EXPECT_NE(x86, arm);
}

TEST_F(GmaTest, OfflineOnlineChurnKeepsPoolConsistent)
{
    // Hot-plug churn: blocks cycling between kernels under live
    // allocation traffic must never leak or double-own a block.
    AddrRange block{4_GiB, 4_GiB + 256_MiB};
    for (unsigned round = 0; round < 6; ++round) {
        KernelInstance &k = round % 2 ? k1_ : k0_;
        gma_->onlineBlock(k, block);
        EXPECT_EQ(gma_->freeBlocks(), 15u);
        // Allocate and free some traffic while the block is online.
        std::vector<Addr> pages;
        for (unsigned i = 0; i < 32; ++i) {
            auto p = k.palloc().allocPage();
            ASSERT_TRUE(p.has_value());
            pages.push_back(*p);
        }
        for (Addr p : pages)
            k.palloc().freePage(p);
        ASSERT_GT(gma_->offlineBlock(k, block), 0u);
        EXPECT_EQ(gma_->freeBlocks(), 16u);
        EXPECT_EQ(gma_->blocksOwnedBy(k.nodeId()), 0u);
    }
    EXPECT_EQ(gma_->stats().value("blocks_onlined"), 6u);
    EXPECT_EQ(gma_->stats().value("blocks_offlined"), 6u);
}

TEST_F(GmaTest, ConcurrentPressureFromBothKernelsDrainsThePool)
{
    // Both kernels growing turn by turn must split the pool without
    // ever handing the same block to two owners, and the direct
    // (message-less) path must degrade to false when nothing is left
    // to donate and both are equally pressured.
    while (gma_->freeBlocks() > 0) {
        ASSERT_TRUE(gma_->onLowMemory(k0_));
        if (gma_->freeBlocks() == 0)
            break;
        ASSERT_TRUE(gma_->onLowMemory(k1_));
    }
    EXPECT_EQ(gma_->blocksOwnedBy(0) + gma_->blocksOwnedBy(1), 16u);
    EXPECT_GE(gma_->blocksOwnedBy(0), 8u);
}

TEST_F(GmaTest, DeathOnForeignBlockOffline)
{
    AddrRange block{4_GiB, 4_GiB + 256_MiB};
    gma_->onlineBlock(k0_, block);
    EXPECT_DEATH(gma_->offlineBlock(k1_, block), "does not own");
}

TEST_F(GmaTest, DeathOnBadBlockSize)
{
    GmaConfig bad;
    bad.blockSize = 1_MiB;
    EXPECT_DEATH(GlobalMemoryAllocator(
                     machine_,
                     std::vector<KernelInstance *>{&k0_, &k1_}, bad),
                 "block size");
}
