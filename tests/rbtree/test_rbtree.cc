#include <gtest/gtest.h>

#include <map>

#include "stramash/common/rng.hh"
#include "stramash/rbtree/rbtree.hh"

using namespace stramash;

using Tree = RbTree<int, int>;

TEST(RbTree, EmptyTree)
{
    Tree t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.find(1), nullptr);
    EXPECT_EQ(t.first(), nullptr);
    EXPECT_EQ(t.last(), nullptr);
    EXPECT_EQ(t.lowerBound(0), nullptr);
    EXPECT_EQ(t.floor(0), nullptr);
    EXPECT_TRUE(t.checkInvariants());
}

TEST(RbTree, InsertAndFind)
{
    Tree t;
    for (int k : {5, 3, 8, 1, 4, 7, 9})
        EXPECT_TRUE(t.insert(k, k * 10).second);
    EXPECT_EQ(t.size(), 7u);
    for (int k : {5, 3, 8, 1, 4, 7, 9}) {
        auto *n = t.find(k);
        ASSERT_NE(n, nullptr);
        EXPECT_EQ(n->value, k * 10);
    }
    EXPECT_EQ(t.find(6), nullptr);
    EXPECT_TRUE(t.checkInvariants());
}

TEST(RbTree, DuplicateInsertReturnsExisting)
{
    Tree t;
    auto [n1, fresh1] = t.insert(5, 50);
    auto [n2, fresh2] = t.insert(5, 99);
    EXPECT_TRUE(fresh1);
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(n1, n2);
    EXPECT_EQ(n2->value, 50);
    EXPECT_EQ(t.size(), 1u);
}

TEST(RbTree, LowerBoundAndFloor)
{
    Tree t;
    for (int k : {10, 20, 30})
        t.insert(k, k);
    EXPECT_EQ(t.lowerBound(10)->key, 10);
    EXPECT_EQ(t.lowerBound(11)->key, 20);
    EXPECT_EQ(t.lowerBound(31), nullptr);
    EXPECT_EQ(t.floor(10)->key, 10);
    EXPECT_EQ(t.floor(29)->key, 20);
    EXPECT_EQ(t.floor(9), nullptr);
    EXPECT_EQ(t.floor(100)->key, 30);
}

TEST(RbTree, InOrderTraversal)
{
    Tree t;
    for (int k : {5, 1, 9, 3, 7})
        t.insert(k, 0);
    std::vector<int> keys;
    for (auto *n = t.first(); n; n = Tree::next(n))
        keys.push_back(n->key);
    EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 7, 9}));

    keys.clear();
    for (auto *n = t.last(); n; n = Tree::prev(n))
        keys.push_back(n->key);
    EXPECT_EQ(keys, (std::vector<int>{9, 7, 5, 3, 1}));
}

TEST(RbTree, EraseLeafAndInternal)
{
    Tree t;
    for (int k = 0; k < 32; ++k)
        t.insert(k, k);
    EXPECT_TRUE(t.eraseKey(31)); // leaf-ish
    EXPECT_TRUE(t.eraseKey(16)); // internal
    EXPECT_TRUE(t.eraseKey(0));
    EXPECT_FALSE(t.eraseKey(16));
    EXPECT_EQ(t.size(), 29u);
    EXPECT_TRUE(t.checkInvariants());
}

TEST(RbTree, ForEachVisitsAscending)
{
    Tree t;
    for (int k : {4, 2, 6})
        t.insert(k, k * 2);
    int prev = -1;
    int count = 0;
    t.forEach([&](const int &k, const int &v) {
        EXPECT_GT(k, prev);
        EXPECT_EQ(v, k * 2);
        prev = k;
        ++count;
    });
    EXPECT_EQ(count, 3);
}

TEST(RbTree, MoveConstruction)
{
    Tree t;
    t.insert(1, 10);
    t.insert(2, 20);
    Tree u(std::move(t));
    EXPECT_EQ(u.size(), 2u);
    EXPECT_TRUE(t.empty());
    EXPECT_NE(u.find(1), nullptr);
}

class RbTreeProperty : public testing::TestWithParam<std::uint64_t>
{
};

/** Random operation sequences vs std::map, checking invariants. */
TEST_P(RbTreeProperty, AgreesWithStdMap)
{
    Rng rng(GetParam());
    Tree t;
    std::map<int, int> ref;

    for (int step = 0; step < 4000; ++step) {
        int key = static_cast<int>(rng.below(512));
        switch (rng.below(4)) {
          case 0:
          case 1: { // insert
            bool fresh = t.insert(key, step).second;
            bool refFresh = ref.emplace(key, step).second;
            ASSERT_EQ(fresh, refFresh);
            break;
          }
          case 2: { // erase
            ASSERT_EQ(t.eraseKey(key), ref.erase(key) != 0);
            break;
          }
          case 3: { // queries
            auto *n = t.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(n != nullptr, it != ref.end());
            if (n) {
                ASSERT_EQ(n->value, it->second);
            }
            auto *lb = t.lowerBound(key);
            auto rlb = ref.lower_bound(key);
            ASSERT_EQ(lb != nullptr, rlb != ref.end());
            if (lb) {
                ASSERT_EQ(lb->key, rlb->first);
            }
            break;
          }
        }
        if (step % 128 == 0) {
            ASSERT_TRUE(t.checkInvariants()) << "step " << step;
            ASSERT_EQ(t.size(), ref.size());
        }
    }
    ASSERT_TRUE(t.checkInvariants());

    // Full in-order agreement at the end.
    auto it = ref.begin();
    for (auto *n = t.first(); n; n = Tree::next(n), ++it) {
        ASSERT_NE(it, ref.end());
        ASSERT_EQ(n->key, it->first);
        ASSERT_EQ(n->value, it->second);
    }
    ASSERT_EQ(it, ref.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeProperty,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
