/**
 * @file
 * The bit-identity contract of the topology generalisation: a System
 * built with no topology (the historical hard-wired paper pair) and
 * one built with `topology = TopologySpec::paperPair(model)` must be
 * indistinguishable — same cycle counts, same message counts, same
 * stats JSON — on the Figure-9 NPB and Figure-14 kv-store
 * configurations.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "stramash/workloads/kvstore.hh"
#include "stramash/workloads/npb.hh"

using namespace stramash;

namespace
{

struct Capture
{
    Cycles runtime = 0;
    std::vector<Cycles> nodeCycles;
    std::uint64_t messages = 0;
    std::uint64_t checksum = 0;
    std::string statsJson;
};

std::string
slurpStats(System &sys, const std::string &tag)
{
    std::string path = ::testing::TempDir() + "topo_diff_" + tag +
                       ".json";
    if (!sys.writeStatsJson(path))
        return "<write failed>";
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
finishCapture(System &sys, Capture &c, const std::string &tag)
{
    c.runtime = sys.runtime();
    for (NodeId n = 0; n < sys.nodeCount(); ++n)
        c.nodeCycles.push_back(sys.machine().node(n).cycles());
    c.messages = sys.messagesSent();
    c.statsJson = slurpStats(sys, tag);
}

/** One Figure-9 style NPB run: migrate cross-ISA, run IS, verify. */
Capture
runNpbScenario(OsDesign design, MemoryModel model,
               std::optional<TopologySpec> topo, const std::string &tag)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = model;
    cfg.topology = topo;
    System sys(cfg);
    App app(sys, 0);
    app.migrateToNext();
    NpbConfig nc;
    nc.iterations = 2;
    nc.problemBytes = 256 * 1024;
    nc.seed = 7;
    NpbResult r = makeNpbKernel("is")->run(app, nc);
    EXPECT_TRUE(r.verified);

    Capture c;
    c.checksum = r.checksum;
    finishCapture(sys, c, tag);
    return c;
}

/** One Figure-14 style kv-store run: migrated server, mixed round. */
Capture
runKvScenario(OsDesign design, std::optional<TopologySpec> topo,
              const std::string &tag)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.cachePluginEnabled = false;
    cfg.topology = topo;
    System sys(cfg);
    App app(sys, 0);
    KvStore store(app, 128, 256);
    store.populate();
    app.migrateToNext();
    Rng rng(42);
    Capture c;
    c.checksum += store.measureRound(KvOp::Get, 400, rng);
    c.checksum += store.measureRound(KvOp::Set, 400, rng);
    finishCapture(sys, c, tag);
    return c;
}

void
expectIdentical(const Capture &a, const Capture &b,
                const std::string &what)
{
    EXPECT_EQ(a.runtime, b.runtime) << what;
    ASSERT_EQ(a.nodeCycles.size(), b.nodeCycles.size()) << what;
    for (std::size_t n = 0; n < a.nodeCycles.size(); ++n)
        EXPECT_EQ(a.nodeCycles[n], b.nodeCycles[n])
            << what << " node " << n;
    EXPECT_EQ(a.messages, b.messages) << what;
    EXPECT_EQ(a.checksum, b.checksum) << what;
    EXPECT_EQ(a.statsJson, b.statsJson) << what;
}

} // namespace

TEST(TopologyDifferential, Fig9NpbIsBitIdenticalUnderEveryModel)
{
    const MemoryModel models[] = {MemoryModel::Separated,
                                  MemoryModel::Shared,
                                  MemoryModel::FullyShared};
    const OsDesign designs[] = {OsDesign::FusedKernel,
                                OsDesign::MultipleKernel};
    for (OsDesign d : designs) {
        for (MemoryModel m : models) {
            std::string what =
                std::string("design ") +
                (d == OsDesign::FusedKernel ? "fused" : "popcorn") +
                " model " + std::to_string(static_cast<int>(m));
            Capture imp = runNpbScenario(d, m, std::nullopt,
                                         "npb_implicit_" + what);
            Capture exp = runNpbScenario(
                d, m, TopologySpec::paperPair(m),
                "npb_explicit_" + what);
            expectIdentical(imp, exp, what);
        }
    }
}

TEST(TopologyDifferential, Fig14KvstoreIsBitIdentical)
{
    const OsDesign designs[] = {OsDesign::FusedKernel,
                                OsDesign::MultipleKernel};
    for (OsDesign d : designs) {
        std::string what =
            d == OsDesign::FusedKernel ? "fused" : "popcorn";
        Capture imp = runKvScenario(d, std::nullopt,
                                    "kv_implicit_" + what);
        Capture exp =
            runKvScenario(d, TopologySpec::paperPair(MemoryModel::Shared),
                          "kv_explicit_" + what);
        expectIdentical(imp, exp, what);
    }
}
