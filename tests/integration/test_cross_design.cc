/**
 * @file
 * Cross-design integration checks: the two OS designs must agree on
 * functional results while exhibiting the paper's characteristic
 * cost differences (Table 3, Figs. 9/11).
 */

#include <gtest/gtest.h>

#include "stramash/workloads/npb.hh"

using namespace stramash;

namespace
{

struct RunStats
{
    Cycles runtime;
    std::uint64_t messages;
    std::uint64_t replicated;
    std::uint64_t checksum;
    bool verified;
};

RunStats
runNpb(OsDesign design, MemoryModel model, Transport transport,
       const std::string &kernel)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = model;
    cfg.transport = transport;
    System sys(cfg);
    App app(sys, 0);
    NpbConfig ncfg;
    ncfg.iterations = 3;
    ncfg.problemBytes = 256 * 1024;
    NpbResult r = makeNpbKernel(kernel)->run(app, ncfg);
    return {sys.runtime(), sys.messagesSent(), sys.replicatedPages(),
            r.checksum, r.verified};
}

} // namespace

TEST(CrossDesign, Table3MessageAndReplicationReduction)
{
    for (const auto &kernel : npbKernelNames()) {
        RunStats pop = runNpb(OsDesign::MultipleKernel,
                              MemoryModel::Shared,
                              Transport::SharedMemory, kernel);
        RunStats fused =
            runNpb(OsDesign::FusedKernel, MemoryModel::Shared,
                   Transport::SharedMemory, kernel);
        ASSERT_TRUE(pop.verified && fused.verified) << kernel;
        EXPECT_EQ(pop.checksum, fused.checksum) << kernel;
        // Table 3: a dramatic message reduction (the paper reports
        // >99% at full scale; tiny test problems still show >90%).
        EXPECT_LT(fused.messages, pop.messages / 10) << kernel;
        EXPECT_LE(fused.messages, 20u) << kernel; // ~2/migration
        // ...and a large replicated-page reduction.
        EXPECT_LT(fused.replicated, pop.replicated) << kernel;
    }
}

TEST(CrossDesign, TcpIsSlowerThanShmForPopcorn)
{
    RunStats shm = runNpb(OsDesign::MultipleKernel,
                          MemoryModel::Shared,
                          Transport::SharedMemory, "is");
    RunStats tcp = runNpb(OsDesign::MultipleKernel,
                          MemoryModel::Shared, Transport::Network,
                          "is");
    EXPECT_GT(tcp.runtime, shm.runtime);
    EXPECT_EQ(tcp.checksum, shm.checksum);
}

TEST(CrossDesign, StramashFullySharedBeatsShared)
{
    RunStats shared =
        runNpb(OsDesign::FusedKernel, MemoryModel::Shared,
               Transport::SharedMemory, "is");
    RunStats fully =
        runNpb(OsDesign::FusedKernel, MemoryModel::FullyShared,
               Transport::SharedMemory, "is");
    EXPECT_LT(fully.runtime, shared.runtime);
}

TEST(CrossDesign, StramashBeatsPopcornOnWriteIntensiveIs)
{
    // Fig. 9's headline: up to 2.1x on IS (write-intensive).
    RunStats pop = runNpb(OsDesign::MultipleKernel,
                          MemoryModel::Shared,
                          Transport::SharedMemory, "is");
    RunStats fused = runNpb(OsDesign::FusedKernel,
                            MemoryModel::Shared,
                            Transport::SharedMemory, "is");
    EXPECT_LT(fused.runtime, pop.runtime);
}

TEST(CrossDesign, BothDesignsKeepArmIcountHigherThanX86)
{
    // The same work retires ~18% more instructions on the RISC
    // side — visible on either design (AE example output).
    for (OsDesign design :
         {OsDesign::MultipleKernel, OsDesign::FusedKernel}) {
        SystemConfig cfg;
        cfg.osDesign = design;
        cfg.memoryModel = MemoryModel::Shared;
        System sys(cfg);
        App app(sys, 0);
        NpbConfig ncfg;
        ncfg.iterations = 2;
        ncfg.problemBytes = 128 * 1024;
        makeNpbKernel("cg")->run(app, ncfg);
        ICount x86 = sys.machine().node(0).icount();
        ICount arm = sys.machine().node(1).icount();
        EXPECT_GT(x86, 0u);
        EXPECT_GT(arm, 0u);
    }
}
