/**
 * @file
 * The crown-jewel property test: under *any* interleaving of writes,
 * reads and migrations, on either OS design and any memory model,
 * the application must observe exactly the data a host-side shadow
 * model observes. This exercises the entire stack — fault handlers,
 * DSM protocol or fused walkers, messaging, page tables, caches.
 */

#include <gtest/gtest.h>

#include "stramash/common/rng.hh"
#include "stramash/core/app.hh"

using namespace stramash;

namespace
{

struct Scenario
{
    OsDesign design;
    MemoryModel model;
    std::uint64_t seed;
};

std::string
scenarioName(const testing::TestParamInfo<Scenario> &info)
{
    return std::string(osDesignName(info.param.design)) + "_" +
           memoryModelName(info.param.model) + "_s" +
           std::to_string(info.param.seed);
}

} // namespace

class MigrationConsistency : public testing::TestWithParam<Scenario>
{
};

TEST_P(MigrationConsistency, RandomOpsMatchShadow)
{
    const Scenario &sc = GetParam();
    SystemConfig cfg;
    cfg.osDesign = sc.design;
    cfg.memoryModel = sc.model;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);
    App app(sys, 0);

    const Addr bytes = 32 * pageSize;
    Addr buf = app.mmap(bytes);
    std::vector<std::uint64_t> shadow(bytes / 8, 0);

    Rng rng(sc.seed);
    for (int step = 0; step < 3000; ++step) {
        std::uint32_t choice = rng.below(100);
        if (choice < 45) { // write
            std::size_t idx = rng.below(
                static_cast<std::uint32_t>(shadow.size()));
            std::uint64_t v = rng.next64();
            app.write<std::uint64_t>(buf + idx * 8, v);
            shadow[idx] = v;
        } else if (choice < 90) { // read
            std::size_t idx = rng.below(
                static_cast<std::uint32_t>(shadow.size()));
            ASSERT_EQ(app.read<std::uint64_t>(buf + idx * 8),
                      shadow[idx])
                << "step " << step << " idx " << idx << " on node "
                << app.where();
        } else if (choice < 97) { // migrate
            app.migrateToNext();
        } else { // bulk check of a random page
            std::size_t page = rng.below(32);
            std::uint64_t tile[512];
            app.readBuf(buf + page * pageSize, tile, pageSize);
            for (int i = 0; i < 512; ++i) {
                ASSERT_EQ(tile[i], shadow[page * 512 + i])
                    << "step " << step;
            }
        }
    }

    // Final full verification from the origin.
    app.migrate(0);
    for (std::size_t i = 0; i < shadow.size(); i += 64)
        ASSERT_EQ(app.read<std::uint64_t>(buf + i * 8), shadow[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MigrationConsistency,
    testing::Values(
        Scenario{OsDesign::MultipleKernel, MemoryModel::Separated, 1},
        Scenario{OsDesign::MultipleKernel, MemoryModel::Shared, 2},
        Scenario{OsDesign::MultipleKernel, MemoryModel::FullyShared,
                 3},
        Scenario{OsDesign::FusedKernel, MemoryModel::Separated, 4},
        Scenario{OsDesign::FusedKernel, MemoryModel::Shared, 5},
        Scenario{OsDesign::FusedKernel, MemoryModel::FullyShared, 6},
        Scenario{OsDesign::MultipleKernel, MemoryModel::Shared, 7},
        Scenario{OsDesign::FusedKernel, MemoryModel::Shared, 8}),
    scenarioName);
