#include <gtest/gtest.h>

#include "stramash/core/app.hh"

using namespace stramash;

namespace
{

class ProcessMigration : public testing::TestWithParam<OsDesign>
{
  protected:
    ProcessMigration()
    {
        SystemConfig cfg;
        cfg.osDesign = GetParam();
        cfg.memoryModel = MemoryModel::Shared;
        cfg.transport = Transport::SharedMemory;
        sys_ = std::make_unique<System>(cfg);
        app_ = std::make_unique<App>(*sys_, 0);
    }

    std::unique_ptr<System> sys_;
    std::unique_ptr<App> app_;
};

} // namespace

TEST_P(ProcessMigration, MovesWholeProcessAndData)
{
    Addr buf = app_->mmap(16 * pageSize);
    for (int i = 0; i < 16; ++i)
        app_->write<std::uint64_t>(buf + Addr(i) * pageSize,
                                   i * 13 + 1);

    sys_->migrateProcess(app_->pid(), 1);

    // The source forgot the process; the destination is the new
    // origin.
    EXPECT_FALSE(sys_->kernel(0).hasTask(app_->pid()));
    ASSERT_TRUE(sys_->kernel(1).hasTask(app_->pid()));
    EXPECT_EQ(sys_->kernel(1).task(app_->pid()).origin, 1u);
    EXPECT_EQ(sys_->whereIs(app_->pid()), 1u);

    // The data followed.
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(
            app_->read<std::uint64_t>(buf + Addr(i) * pageSize),
            static_cast<std::uint64_t>(i * 13 + 1));
    }
}

TEST_P(ProcessMigration, NewOriginHandlesFaultsLocally)
{
    Addr buf = app_->mmap(8 * pageSize);
    app_->write<std::uint64_t>(buf, 5);
    sys_->migrateProcess(app_->pid(), 1);

    // A fresh touch at the new origin is a plain local fault: no
    // messaging regardless of design.
    auto msgs = sys_->messagesSent();
    app_->write<std::uint64_t>(buf + 4 * pageSize, 9);
    EXPECT_EQ(sys_->messagesSent(), msgs);
    EXPECT_EQ(app_->read<std::uint64_t>(buf + 4 * pageSize), 9u);
}

TEST_P(ProcessMigration, ThreadMigrationStillWorksAfterwards)
{
    Addr buf = app_->mmap(4 * pageSize);
    app_->write<std::uint64_t>(buf, 0xabc);
    sys_->migrateProcess(app_->pid(), 1);

    // Thread-migrate back to node 0: now node 0 is the *remote*.
    app_->migrate(0);
    EXPECT_EQ(app_->read<std::uint64_t>(buf), 0xabcu);
    app_->write<std::uint64_t>(buf, 0xdef);
    app_->migrate(1);
    EXPECT_EQ(app_->read<std::uint64_t>(buf), 0xdefu);
}

TEST_P(ProcessMigration, NoFrameLeaksAfterExit)
{
    std::uint64_t used0 = sys_->kernel(0).palloc().usedPages();
    std::uint64_t used1 = sys_->kernel(1).palloc().usedPages();
    {
        App app2(*sys_, 0);
        Addr buf = app2.mmap(8 * pageSize);
        for (int i = 0; i < 8; ++i)
            app2.write<std::uint64_t>(buf + Addr(i) * pageSize, i);
        sys_->migrateProcess(app2.pid(), 1);
        app2.write<std::uint64_t>(buf, 99);
    }
    EXPECT_EQ(sys_->kernel(0).palloc().usedPages(), used0);
    EXPECT_EQ(sys_->kernel(1).palloc().usedPages(), used1);
}

TEST_P(ProcessMigration, ReclaimsRemotelyOwnedPagesFirst)
{
    // A page last written on the remote side must survive the
    // process migration with its latest value.
    Addr buf = app_->mmap(4 * pageSize);
    app_->write<std::uint64_t>(buf, 1);
    app_->migrateToNext();
    app_->write<std::uint64_t>(buf, 2); // remote now owns the page
    app_->migrate(0);                   // thread home; page stays owned remotely
    sys_->migrateProcess(app_->pid(), 1);
    EXPECT_EQ(app_->read<std::uint64_t>(buf), 2u);
}

TEST_P(ProcessMigration, MigrateToCurrentNodeIsNoop)
{
    auto msgs = sys_->messagesSent();
    sys_->migrateProcess(app_->pid(), 0);
    EXPECT_EQ(sys_->messagesSent(), msgs);
    EXPECT_TRUE(sys_->kernel(0).hasTask(app_->pid()));
}

INSTANTIATE_TEST_SUITE_P(Designs, ProcessMigration,
                         testing::Values(OsDesign::MultipleKernel,
                                         OsDesign::FusedKernel),
                         [](const auto &info) {
                             return std::string(
                                 osDesignName(info.param));
                         });

TEST(ProcessMigrationCost, FusedMovesNoContent)
{
    // Popcorn ships every resident page as a message payload; the
    // fused design adopts frames in place: far fewer bytes travel.
    auto run = [](OsDesign design) {
        SystemConfig cfg;
        cfg.osDesign = design;
        cfg.memoryModel = MemoryModel::Shared;
        System sys(cfg);
        App app(sys, 0);
        Addr buf = app.mmap(32 * pageSize);
        for (int i = 0; i < 32; ++i)
            app.write<std::uint64_t>(buf + Addr(i) * pageSize, i);
        auto bytesBefore = sys.msg().bytesSent();
        sys.migrateProcess(app.pid(), 1);
        return sys.msg().bytesSent() - bytesBefore;
    };
    auto popcornBytes = run(OsDesign::MultipleKernel);
    auto fusedBytes = run(OsDesign::FusedKernel);
    EXPECT_GT(popcornBytes, 32u * pageSize); // pages on the wire
    EXPECT_LT(fusedBytes, 1024u);            // one notification
}
