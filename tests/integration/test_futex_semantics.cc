/**
 * @file
 * Futex semantics across both policy implementations: multi-waiter
 * queues, FIFO wake order, cross-kernel waiter mixes, and the value
 * re-check that prevents lost wake-ups.
 */

#include <gtest/gtest.h>

#include "stramash/core/app.hh"

using namespace stramash;

namespace
{

class FutexSemantics : public testing::TestWithParam<OsDesign>
{
  protected:
    FutexSemantics()
    {
        SystemConfig cfg;
        cfg.osDesign = GetParam();
        cfg.memoryModel = MemoryModel::Shared;
        sys_ = std::make_unique<System>(cfg);
    }

    std::unique_ptr<System> sys_;
};

} // namespace

TEST_P(FutexSemantics, MultipleWaitersWakeInFifoOrder)
{
    // Three waiter records park on the same futex word; wakes
    // release them in arrival order.
    App a(*sys_, 0);
    Addr page = a.mmap(pageSize);
    a.write<std::uint32_t>(page, 1);
    KernelInstance &k0 = sys_->kernel(0);
    Task &t = k0.task(a.pid());
    FutexPolicy &fp = sys_->futexPolicy();

    EXPECT_TRUE(fp.wait(k0, t, page, 1));
    EXPECT_TRUE(fp.wait(k0, t, page, 1));
    EXPECT_TRUE(fp.wait(k0, t, page, 1));
    EXPECT_EQ(k0.futexTable().waiters(page), 3u);

    EXPECT_EQ(fp.wake(k0, t, page, 1), 1u);
    EXPECT_EQ(k0.futexTable().waiters(page), 2u);
    EXPECT_EQ(fp.wake(k0, t, page, 2), 2u);
    EXPECT_EQ(k0.futexTable().waiters(page), 0u);
    EXPECT_EQ(fp.wake(k0, t, page, 1), 0u); // nothing left
}

TEST_P(FutexSemantics, MixedKernelWaiters)
{
    App app(*sys_, 0);
    Addr page = app.mmap(pageSize);
    app.write<std::uint32_t>(page, 7);

    // Park one waiter from each side of the machine.
    KernelInstance &k0 = sys_->kernel(0);
    EXPECT_TRUE(
        sys_->futexPolicy().wait(k0, k0.task(app.pid()), page, 7));
    app.migrateToNext();
    KernelInstance &k1 = sys_->kernel(1);
    EXPECT_TRUE(
        sys_->futexPolicy().wait(k1, k1.task(app.pid()), page, 7));

    // Both are queued at the origin regardless of design (§6.5).
    EXPECT_EQ(k0.futexTable().waiters(page), 2u);

    // Wake everything from the remote side.
    EXPECT_EQ(sys_->futexPolicy().wake(k1, k1.task(app.pid()), page,
                                       8),
              2u);
    EXPECT_EQ(k0.futexTable().waiters(page), 0u);
}

TEST_P(FutexSemantics, StaleValueNeverBlocks)
{
    // The FUTEX_WAIT contract: a mismatching word value returns
    // immediately — from either side.
    App app(*sys_, 0);
    Addr page = app.mmap(pageSize);
    app.write<std::uint32_t>(page, 10);
    EXPECT_FALSE(app.futexWait(page, 11));
    app.migrateToNext();
    EXPECT_FALSE(app.futexWait(page, 12));
    EXPECT_EQ(sys_->kernel(0).futexTable().waiters(page), 0u);
}

TEST_P(FutexSemantics, WakeOnEmptyFutexIsZero)
{
    App app(*sys_, 0);
    Addr page = app.mmap(pageSize);
    app.write<std::uint32_t>(page, 0);
    EXPECT_EQ(app.futexWake(page, 4), 0u);
    app.migrateToNext();
    EXPECT_EQ(app.futexWake(page, 4), 0u);
}

TEST_P(FutexSemantics, DistinctWordsDistinctQueues)
{
    App app(*sys_, 0);
    Addr page = app.mmap(pageSize);
    app.write<std::uint32_t>(page, 1);
    app.write<std::uint32_t>(page + 64, 1);
    EXPECT_TRUE(app.futexWait(page, 1));
    EXPECT_TRUE(app.futexWait(page + 64, 1));
    EXPECT_EQ(app.futexWake(page, 8), 1u); // only its own queue
    EXPECT_EQ(sys_->kernel(0).futexTable().waiters(page + 64), 1u);
    EXPECT_EQ(app.futexWake(page + 64, 8), 1u);
}

TEST_P(FutexSemantics, PartialWakeReleasesOldestAndKeepsOrder)
{
    // Three distinct tasks park on the same word; a partial wake
    // must release the oldest waiters and leave the remainder queued
    // in arrival order (FUTEX_WAKE is strictly FIFO).
    App a(*sys_, 0);
    App b(*sys_, 0);
    App c(*sys_, 0);
    // Identical layouts: the word sits at the same VA in each task.
    Addr page = a.mmap(pageSize);
    ASSERT_EQ(b.mmap(pageSize), page);
    ASSERT_EQ(c.mmap(pageSize), page);
    a.write<std::uint32_t>(page, 1);
    b.write<std::uint32_t>(page, 1);
    c.write<std::uint32_t>(page, 1);

    KernelInstance &k0 = sys_->kernel(0);
    FutexPolicy &fp = sys_->futexPolicy();
    EXPECT_TRUE(fp.wait(k0, k0.task(a.pid()), page, 1));
    EXPECT_TRUE(fp.wait(k0, k0.task(b.pid()), page, 1));
    EXPECT_TRUE(fp.wait(k0, k0.task(c.pid()), page, 1));

    EXPECT_EQ(fp.wake(k0, k0.task(a.pid()), page, 2), 2u);
    EXPECT_EQ(k0.futexTable().waiters(page), 1u);
    // The survivor of the partial wake is the youngest arrival.
    auto rest = k0.futexTable().wake(page, 8);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].pid, c.pid());
}

TEST_P(FutexSemantics, DoubleWakeIsIdempotent)
{
    // A waiter is woken at most once: a second wake on the same word
    // finds the queue empty and returns zero instead of re-waking or
    // underflowing.
    App app(*sys_, 0);
    Addr page = app.mmap(pageSize);
    app.write<std::uint32_t>(page, 1);
    EXPECT_TRUE(app.futexWait(page, 1));
    EXPECT_EQ(app.futexWake(page, 1), 1u);
    EXPECT_EQ(app.futexWake(page, 1), 0u);
    EXPECT_EQ(app.futexWake(page, 8), 0u);
    EXPECT_EQ(sys_->kernel(0).futexTable().waiters(page), 0u);
    EXPECT_EQ(sys_->kernel(0).futexTable().activeFutexes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Designs, FutexSemantics,
                         testing::Values(OsDesign::MultipleKernel,
                                         OsDesign::FusedKernel),
                         [](const auto &info) {
                             return std::string(
                                 osDesignName(info.param));
                         });
