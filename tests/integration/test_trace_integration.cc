/**
 * End-to-end tracing: run a migration workload under both OS designs
 * with tracing on and check the recorded event stream has the
 * expected cross-layer shape — fault, message, IPI and migration
 * categories, events on both node tracks, and "migrate.in" on the
 * destination before the destination's first fault handling.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "stramash/core/app.hh"
#include "stramash/trace/chrome_exporter.hh"

using namespace stramash;

namespace
{

class TraceIntegration : public testing::TestWithParam<OsDesign>
{
  protected:
    TraceIntegration()
    {
        SystemConfig cfg;
        cfg.osDesign = GetParam();
        cfg.memoryModel = MemoryModel::Shared;
        cfg.transport = Transport::SharedMemory;
        cfg.trace.enabled = true;
        sys_ = std::make_unique<System>(cfg);
        app_ = std::make_unique<App>(*sys_, 0);
    }

    /** Local faults, a migration, remote faults, a futex wake. */
    void
    runWorkload()
    {
        Addr buf = app_->mmap(16 * pageSize);
        for (Addr off = 0; off < 4 * pageSize; off += pageSize)
            app_->write<std::uint32_t>(buf + off, 1);
        app_->migrateToNext();
        for (Addr off = 4 * pageSize; off < 8 * pageSize;
             off += pageSize)
            app_->write<std::uint32_t>(buf + off, 2);
        app_->futexWake(buf, 1);
    }

    std::unique_ptr<System> sys_;
    std::unique_ptr<App> app_;
};

} // namespace

TEST_P(TraceIntegration, EmitsExpectedCategoriesAcrossNodes)
{
    runWorkload();
    Tracer &tracer = sys_->tracer();
    ASSERT_GT(tracer.totalEvents(), 0u);

    std::set<TraceCategory> cats;
    std::set<NodeId> nodes;
    for (const auto &ev : tracer.merged()) {
        cats.insert(ev.category);
        nodes.insert(ev.node);
        EXPECT_GE(ev.endCycles, ev.startCycles);
    }
    EXPECT_TRUE(cats.count(TraceCategory::Fault));
    EXPECT_TRUE(cats.count(TraceCategory::Msg));
    EXPECT_TRUE(cats.count(TraceCategory::Ipi));
    EXPECT_TRUE(cats.count(TraceCategory::Migrate));
    EXPECT_GE(cats.size(), 4u);
    EXPECT_GE(nodes.size(), 2u);
}

TEST_P(TraceIntegration, MigrateInPrecedesRemoteFaultHandling)
{
    runWorkload();
    NodeId dest = sys_->whereIs(app_->pid());
    EXPECT_NE(dest, 0u);

    // Per-node buffer order is chronological for that node's track.
    auto events = sys_->tracer().buffer(dest).snapshot();
    int migrateIdx = -1;
    int faultIdx = -1;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (migrateIdx < 0 &&
            std::string(events[i].name) == "migrate.in")
            migrateIdx = static_cast<int>(i);
        if (faultIdx < 0 &&
            events[i].category == TraceCategory::Fault &&
            events[i].pid == app_->pid())
            faultIdx = static_cast<int>(i);
    }
    ASSERT_GE(migrateIdx, 0) << "destination saw no migrate.in";
    ASSERT_GE(faultIdx, 0) << "destination handled no faults";
    EXPECT_LT(migrateIdx, faultIdx);
}

TEST_P(TraceIntegration, ChromeExportCoversAllCategories)
{
    runWorkload();
    std::ostringstream os;
    ChromeTraceExporter exporter(sys_->tracer());
    exporter.write(os);
    std::string json = os.str();

    for (const char *cat : {"fault", "msg", "ipi", "migrate"}) {
        EXPECT_NE(json.find(std::string("\"cat\":\"") + cat + "\""),
                  std::string::npos)
            << "missing category " << cat;
    }
    // Both node tracks present.
    EXPECT_NE(json.find("\"ph\":\"M\",\"pid\":0"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\",\"pid\":1"), std::string::npos);
}

TEST_P(TraceIntegration, DisabledTracerStaysSilent)
{
    SystemConfig cfg;
    cfg.osDesign = GetParam();
    cfg.memoryModel = MemoryModel::Shared;
    System quiet(cfg);
    App app(quiet, 0);
    Addr buf = app.mmap(4 * pageSize);
    app.write<std::uint32_t>(buf, 1);
    app.migrateToNext();
    app.write<std::uint32_t>(buf + pageSize, 2);
    EXPECT_EQ(quiet.tracer().totalEvents(), 0u);
    EXPECT_EQ(quiet.tracer().totalDropped(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Designs, TraceIntegration,
                         testing::Values(OsDesign::MultipleKernel,
                                         OsDesign::FusedKernel));
