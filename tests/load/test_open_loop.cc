/**
 * @file
 * The open-loop service loop end to end: latency accounting,
 * batching amortisation, the hot-key cache's two invalidation
 * regimes (coherent tag validation on the fused design, explicit
 * CacheInvalidate messages on Popcorn), stats export, and
 * bit-identical replay of a whole run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "stramash/load/engine.hh"

using namespace stramash;

namespace
{

std::unique_ptr<System>
makeSystem(OsDesign design, std::size_t nodes)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology =
        TopologySpec::alternating(nodes, MemoryModel::Shared);
    return std::make_unique<System>(cfg);
}

OpenLoopConfig
engineConfig(std::uint64_t keySpace, double ratePerMcycle)
{
    OpenLoopConfig oc;
    oc.arrival = ArrivalConfig::poisson(ratePerMcycle, 42);
    oc.keys = KeyDistConfig::zipfian(keySpace, 0.99, 43);
    oc.requests = 800;
    oc.seed = 44;
    return oc;
}

OpenLoopReport
runOnce(OsDesign design, ServiceConfig sc, double ratePerMcycle)
{
    auto sys = makeSystem(design, 4);
    ShardedKvStore store(*sys);
    store.populate();
    KvFrontEnd fe(*sys, store, sc);
    OpenLoopEngine eng(engineConfig(store.keySpace(), ratePerMcycle));
    OpenLoopReport rep = eng.run(fe);
    EXPECT_TRUE(store.verify());
    return rep;
}

} // namespace

TEST(OpenLoop, ConservationAndOrderedPercentiles)
{
    ServiceConfig sc;
    sc.hotKeyCache = true;
    OpenLoopReport rep = runOnce(OsDesign::FusedKernel, sc, 60.0);

    EXPECT_EQ(rep.offered, 800u);
    EXPECT_EQ(rep.accepted + rep.shed, rep.offered);
    EXPECT_EQ(rep.served, rep.accepted);
    EXPECT_GT(rep.served, 0u);
    EXPECT_GE(rep.lastCompletion, rep.lastArrival);

    EXPECT_GT(rep.p50, 0.0);
    EXPECT_LE(rep.p50, rep.p99);
    EXPECT_LE(rep.p99, rep.p999);
    EXPECT_GT(rep.meanLatency, 0.0);
}

TEST(OpenLoop, BatchingAmortisesDispatches)
{
    ServiceConfig one;
    one.batchSize = 1;
    ServiceConfig eight;
    eight.batchSize = 8;
    // Load the loop well past incremental service so batches fill.
    OpenLoopReport r1 = runOnce(OsDesign::FusedKernel, one, 250.0);
    OpenLoopReport r8 = runOnce(OsDesign::FusedKernel, eight, 250.0);

    EXPECT_EQ(r1.batches, r1.served);
    EXPECT_LT(r8.batches, r1.batches / 2)
        << "batch-8 dispatches should be far fewer than batch-1";
}

TEST(OpenLoop, FusedStaleHitDetectedByCoherentTag)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    ShardedKvStore store(*sys);
    store.populate();
    ServiceConfig sc;
    sc.hotKeyCache = true;
    KvFrontEnd fe(*sys, store, sc);

    // key 1 lives on shard 1; ingress 0 is the caching remote node.
    EXPECT_EQ(fe.inject(1000, KvOp::Get, 1, 0), Errc::Ok);
    EXPECT_EQ(fe.inject(200000, KvOp::Get, 1, 0), Errc::Ok);
    fe.drain();
    StatGroup &g = fe.stats();
    EXPECT_EQ(g.counter("cache_misses").value(), 1u);
    EXPECT_EQ(g.counter("cache_hits").value(), 1u);
    EXPECT_TRUE(fe.cachesKey(0, 1));

    // A write at the owner: no messages on the fused design, just a
    // coherence-side invalidation of the remote copy.
    EXPECT_EQ(fe.inject(400000, KvOp::Set, 1, 1), Errc::Ok);
    fe.drain();
    EXPECT_EQ(g.counter("coherent_invalidations").value(), 1u);
    EXPECT_EQ(g.counter("invalidations_sent").value(), 0u);
    // The entry is still present but stale...
    EXPECT_TRUE(fe.cachesKey(0, 1));

    // ...and the next cached read catches it via the tag compare,
    // refetches, and leaves a fresh copy behind.
    EXPECT_EQ(fe.inject(600000, KvOp::Get, 1, 0), Errc::Ok);
    fe.drain();
    EXPECT_EQ(g.counter("cache_stale").value(), 1u);
    EXPECT_EQ(g.counter("cache_hits").value(), 1u);
    EXPECT_EQ(fe.inject(800000, KvOp::Get, 1, 0), Errc::Ok);
    fe.drain();
    EXPECT_EQ(g.counter("cache_hits").value(), 2u);
    EXPECT_TRUE(store.verify());
}

TEST(OpenLoop, PopcornWritesPushExplicitInvalidations)
{
    auto sys = makeSystem(OsDesign::MultipleKernel, 2);
    ShardedKvStore store(*sys);
    store.populate();
    ServiceConfig sc;
    sc.hotKeyCache = true;
    KvFrontEnd fe(*sys, store, sc);

    EXPECT_EQ(fe.inject(1000, KvOp::Get, 1, 0), Errc::Ok);
    fe.drain();
    EXPECT_TRUE(fe.cachesKey(0, 1));

    // The owner's write must pay one CacheInvalidate message per
    // sharer; the sharer's entry is gone on delivery (present ==
    // valid, there is no coherent tag to validate against).
    EXPECT_EQ(fe.inject(300000, KvOp::Set, 1, 1), Errc::Ok);
    fe.drain();
    StatGroup &g = fe.stats();
    EXPECT_EQ(g.counter("invalidations_sent").value(), 1u);
    EXPECT_EQ(g.counter("invalidations_received").value(), 1u);
    EXPECT_EQ(g.counter("coherent_invalidations").value(), 0u);
    EXPECT_FALSE(fe.cachesKey(0, 1));

    // The next read is a clean miss, never a stale hit.
    EXPECT_EQ(fe.inject(500000, KvOp::Get, 1, 0), Errc::Ok);
    fe.drain();
    EXPECT_EQ(g.counter("cache_stale").value(), 0u);
    EXPECT_EQ(g.counter("cache_misses").value(), 2u);
    EXPECT_TRUE(store.verify());
}

TEST(OpenLoop, LruEvictionDropsTheColdestKey)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    ShardedKvStore store(*sys);
    store.populate();
    ServiceConfig sc;
    sc.hotKeyCache = true;
    sc.cacheEntriesPerNode = 2;
    KvFrontEnd fe(*sys, store, sc);

    // Three distinct shard-1 keys through ingress 0: the first
    // (coldest) must fall out of the 2-entry cache.
    Cycles t = 1000;
    for (std::uint64_t key : {1ULL, 3ULL, 5ULL}) {
        EXPECT_EQ(fe.inject(t, KvOp::Get, key, 0), Errc::Ok);
        t += 200000;
        fe.drain();
    }
    EXPECT_FALSE(fe.cachesKey(0, 1));
    EXPECT_TRUE(fe.cachesKey(0, 3));
    EXPECT_TRUE(fe.cachesKey(0, 5));
}

TEST(OpenLoop, LoadStatsExportedThroughTheSystem)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    ShardedKvStore store(*sys);
    store.populate();
    {
        KvFrontEnd fe(*sys, store, {});
        std::vector<std::string> names;
        sys->forEachStatGroup([&](const StatGroup &g) {
            names.push_back(g.name());
        });
        EXPECT_NE(std::find(names.begin(), names.end(), "load"),
                  names.end())
            << "front-end stats must ride along in --stats-json";
    }
    // Destruction unregisters: no dangling group left behind.
    std::vector<std::string> names;
    sys->forEachStatGroup(
        [&](const StatGroup &g) { names.push_back(g.name()); });
    EXPECT_EQ(std::find(names.begin(), names.end(), "load"),
              names.end());
}

TEST(OpenLoop, IdenticalSeedsReproduceTheWholeRun)
{
    ServiceConfig sc;
    sc.hotKeyCache = true;
    OpenLoopReport a = runOnce(OsDesign::FusedKernel, sc, 120.0);
    OpenLoopReport b = runOnce(OsDesign::FusedKernel, sc, 120.0);

    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheStale, b.cacheStale);
    EXPECT_EQ(a.lastCompletion, b.lastCompletion);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.p999, b.p999);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
}
