/**
 * @file
 * The seeded traffic generators: Poisson and on/off arrival
 * statistics, the bounded-Zipfian rank-frequency shape, the rank
 * scramble being a true permutation, and bit-identical replay for
 * identical seeds.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "stramash/load/arrival.hh"
#include "stramash/load/keydist.hh"

using namespace stramash;

namespace
{

/** Mean and squared coefficient of variation of n gaps. */
std::pair<double, double>
gapStats(ArrivalProcess &p, std::size_t n)
{
    double sum = 0.0, sumSq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        auto g = static_cast<double>(p.next());
        sum += g;
        sumSq += g * g;
    }
    double mean = sum / n;
    double var = sumSq / n - mean * mean;
    return {mean, var / (mean * mean)};
}

} // namespace

TEST(Arrival, PoissonMeanMatchesConfiguredRate)
{
    // 100 requests per Mcycle -> mean inter-arrival gap of 10000
    // cycles. 50k draws put the sample mean within a couple percent.
    ArrivalProcess p(ArrivalConfig::poisson(100.0, 7));
    auto [mean, cv2] = gapStats(p, 50000);
    EXPECT_NEAR(mean, 10000.0, 250.0);
    // Exponential gaps: squared coefficient of variation ~= 1.
    EXPECT_NEAR(cv2, 1.0, 0.15);
}

TEST(Arrival, PoissonRateScalesInversely)
{
    ArrivalProcess fast(ArrivalConfig::poisson(400.0, 7));
    auto [mean, cv2] = gapStats(fast, 50000);
    (void)cv2;
    EXPECT_NEAR(mean, 2500.0, 80.0);
}

TEST(Arrival, OnOffIsBurstierThanPoisson)
{
    // The modulated process mixes a 4x-rate on phase with a 0.25x
    // idle phase, so its gap distribution is over-dispersed relative
    // to the exponential: squared CV well above 1.
    ArrivalProcess p(ArrivalConfig::onOff(100.0, 7));
    auto [mean, cv2] = gapStats(p, 50000);
    EXPECT_GT(mean, 0.0);
    EXPECT_GT(cv2, 1.3);
}

TEST(Arrival, IdenticalSeedsBitIdenticalStreams)
{
    for (auto mk : {&ArrivalConfig::poisson, &ArrivalConfig::onOff}) {
        ArrivalProcess a(mk(123.0, 99));
        ArrivalProcess b(mk(123.0, 99));
        for (int i = 0; i < 2000; ++i)
            ASSERT_EQ(a.next(), b.next());
    }
}

TEST(Arrival, DifferentSeedsDiverge)
{
    ArrivalProcess a(ArrivalConfig::poisson(100.0, 1));
    ArrivalProcess b(ArrivalConfig::poisson(100.0, 2));
    bool anyDiff = false;
    for (int i = 0; i < 100 && !anyDiff; ++i)
        anyDiff = a.next() != b.next();
    EXPECT_TRUE(anyDiff);
}

TEST(Arrival, GapsAlwaysAdvanceTime)
{
    ArrivalProcess p(ArrivalConfig::poisson(100000.0, 3));
    for (int i = 0; i < 10000; ++i)
        ASSERT_GE(p.next(), 1u);
}

TEST(Keydist, ZipfianRankFrequencyShape)
{
    const std::uint64_t n = 1024;
    KeyChooser c(KeyDistConfig::zipfian(n, 0.99, 11));
    std::vector<std::uint64_t> freq(n, 0);
    const std::size_t draws = 200000;
    for (std::size_t i = 0; i < draws; ++i)
        ++freq[c.nextRank()];

    // freq(r) ~ 1 / r^theta: rank 0 over rank 1 is ~2^0.99 ~ 1.99.
    double ratio01 = static_cast<double>(freq[0]) /
                     static_cast<double>(freq[1]);
    EXPECT_NEAR(ratio01, std::pow(2.0, 0.99), 0.25);
    // The head dominates: top-10 ranks take over 30% of all draws.
    std::uint64_t top10 = 0;
    for (int r = 0; r < 10; ++r)
        top10 += freq[r];
    EXPECT_GT(static_cast<double>(top10) / draws, 0.30);
    // Frequencies fall with rank (coarsely, to dodge noise).
    EXPECT_GT(freq[0], freq[4]);
    EXPECT_GT(freq[4], freq[63]);
    EXPECT_GT(freq[63], freq[1023]);
}

TEST(Keydist, ScrambleIsAPermutation)
{
    // Non-power-of-two domain exercises the cycle-walking path.
    KeyChooser c(KeyDistConfig::zipfian(1000, 0.99, 1));
    std::set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < 1000; ++r) {
        std::uint64_t k = c.scramble(r);
        EXPECT_LT(k, 1000u);
        seen.insert(k);
    }
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Keydist, ScrambleSpreadsTheHotSetAcrossShards)
{
    // Rank r lands on shard key%N in the sharded store; the whole
    // point of scrambling is that ranks 0..7 don't all sit on the
    // same few shards.
    KeyChooser c(KeyDistConfig::zipfian(512, 0.99, 1));
    std::set<std::uint64_t> shards;
    for (std::uint64_t r = 0; r < 8; ++r)
        shards.insert(c.scramble(r) % 8);
    EXPECT_GE(shards.size(), 4u);
}

TEST(Keydist, UniformCoversTheKeySpace)
{
    KeyChooser c(KeyDistConfig::uniform(64, 5));
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t k = c.next();
        ASSERT_LT(k, 64u);
        seen.insert(k);
    }
    EXPECT_EQ(seen.size(), 64u);
}

TEST(Keydist, IdenticalSeedsBitIdenticalKeys)
{
    KeyChooser a(KeyDistConfig::zipfian(4096, 0.99, 77));
    KeyChooser b(KeyDistConfig::zipfian(4096, 0.99, 77));
    for (int i = 0; i < 5000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Keydist, ThetaOutsideUnitIntervalPanics)
{
    EXPECT_DEATH(
        { KeyChooser c(KeyDistConfig::zipfian(16, 1.0, 1)); }, "theta");
}
