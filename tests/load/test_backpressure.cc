/**
 * @file
 * Admission control under sustained overload: queue depth stays
 * bounded at the configured capacity, excess arrivals shed through
 * Errc::RingFull with the ring_full stat growing, and the loop
 * converges fault-free once the storm ends (every accepted request
 * served, every queue empty).
 */

#include <gtest/gtest.h>

#include <memory>

#include "stramash/load/engine.hh"

using namespace stramash;

namespace
{

std::unique_ptr<System>
makeSystem(OsDesign design, std::size_t nodes)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology =
        TopologySpec::alternating(nodes, MemoryModel::Shared);
    return std::make_unique<System>(cfg);
}

} // namespace

TEST(Backpressure, SustainedOverloadShedsAndStaysBounded)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    ShardedKvStore store(*sys);
    store.populate();
    ServiceConfig sc;
    sc.queueCapacity = 16;
    KvFrontEnd fe(*sys, store, sc);

    // Arrivals far past service capacity (each request costs north
    // of 10k cycles; offer one every ~650). The queue must pin at
    // capacity, never beyond, and the overflow must shed.
    ArrivalProcess arrivals(ArrivalConfig::poisson(1500.0, 9));
    KeyChooser keys(KeyDistConfig::zipfian(store.keySpace(), 0.99, 10));
    Rng mix(11, 0x1d1e);
    Cycles t = 0;
    std::uint64_t shed = 0;
    for (int i = 0; i < 3000; ++i) {
        t += arrivals.next();
        auto ingress = static_cast<NodeId>(mix.below64(2));
        Errc rc = fe.inject(t, (i % 10 == 0) ? KvOp::Set : KvOp::Get,
                            keys.next(), ingress);
        if (rc == Errc::RingFull)
            ++shed;
        ASSERT_LE(fe.queueDepth(0), sc.queueCapacity);
        ASSERT_LE(fe.queueDepth(1), sc.queueCapacity);
    }

    StatGroup &g = fe.stats();
    EXPECT_GT(shed, 0u) << "overload must trip admission control";
    EXPECT_EQ(g.counter("ring_full").value(), shed);
    EXPECT_EQ(g.counter("accepted").value(), 3000u - shed);

    // Fault-free convergence: the storm ends, the loop drains, and
    // every admitted request was served exactly once.
    fe.drain();
    EXPECT_EQ(fe.queueDepth(0), 0u);
    EXPECT_EQ(fe.queueDepth(1), 0u);
    EXPECT_EQ(g.counter("served").value(), 3000u - shed);
    EXPECT_TRUE(store.verify());
}

TEST(Backpressure, ShedRateGrowsWithOfferedLoad)
{
    auto run = [](double ratePerMcycle) {
        auto sys = makeSystem(OsDesign::FusedKernel, 2);
        ShardedKvStore store(*sys);
        store.populate();
        ServiceConfig sc;
        sc.queueCapacity = 32;
        KvFrontEnd fe(*sys, store, sc);
        OpenLoopConfig oc;
        oc.arrival = ArrivalConfig::poisson(ratePerMcycle, 21);
        oc.keys =
            KeyDistConfig::zipfian(store.keySpace(), 0.99, 22);
        oc.requests = 1500;
        oc.seed = 23;
        return OpenLoopEngine(oc).run(fe);
    };

    OpenLoopReport stable = run(40.0);
    OpenLoopReport overload = run(400.0);
    EXPECT_EQ(stable.shed, 0u)
        << "well under capacity nothing sheds";
    EXPECT_GT(overload.shed, 0u);
    EXPECT_GT(overload.shedRate(), stable.shedRate());
    // Accepted work still conserves.
    EXPECT_EQ(overload.served, overload.accepted);
}

TEST(Backpressure, TinyQueueReportsRingFullDirectly)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    ShardedKvStore store(*sys);
    store.populate();
    ServiceConfig sc;
    sc.queueCapacity = 1;
    KvFrontEnd fe(*sys, store, sc);

    // Two arrivals in the same cycle: the first fills the queue and
    // the second is refused before any batch can start (a later
    // arrival would instead let the loop drain the first).
    EXPECT_EQ(fe.inject(1000, KvOp::Get, 1, 0), Errc::Ok);
    EXPECT_EQ(fe.inject(1000, KvOp::Get, 3, 0), Errc::RingFull);
    fe.drain();
    EXPECT_EQ(fe.stats().counter("served").value(), 1u);
    EXPECT_TRUE(store.verify());
}
