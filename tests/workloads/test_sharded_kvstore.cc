/**
 * @file
 * The sharded multi-node kv-store: correctness of the shard map and
 * the cross-shard forwarding paths, and the node-count scaling the
 * workload exists to demonstrate.
 */

#include <gtest/gtest.h>

#include <memory>

#include "stramash/workloads/sharded_kvstore.hh"

using namespace stramash;

namespace
{

std::unique_ptr<System>
makeSystem(OsDesign design, std::size_t nodes)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology =
        TopologySpec::alternating(nodes, MemoryModel::Shared);
    return std::make_unique<System>(cfg);
}

double
throughput(OsDesign design, std::size_t nodes,
           std::uint64_t requests)
{
    auto sys = makeSystem(design, nodes);
    ShardedKvStore store(*sys);
    store.populate();
    Cycles spent = store.run(requests);
    EXPECT_TRUE(store.verify());
    EXPECT_GT(spent, 0u);
    return static_cast<double>(requests) /
           static_cast<double>(spent);
}

} // namespace

TEST(ShardedKvstore, ShardMapCoversEveryNode)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 4);
    ShardedKvStore store(*sys);
    EXPECT_EQ(store.shards(), 4u);
    for (std::uint64_t key = 0; key < 16; ++key)
        EXPECT_EQ(store.shardOf(key), key % 4);
}

TEST(ShardedKvstore, FusedRunVerifiesAndCrossesShards)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 4);
    ShardedKvStore store(*sys);
    store.populate();
    ASSERT_TRUE(store.verify()) << "populate mirror broken";
    store.run(1000);
    EXPECT_EQ(store.requestsServed(), 1000u);
    // Round-robin ingress over 4 shards: ~3/4 of requests forward.
    EXPECT_GT(store.crossShardRequests(), 500u);
    EXPECT_LT(store.crossShardRequests(), 1000u);
    EXPECT_TRUE(store.verify());
}

TEST(ShardedKvstore, PopcornForwardingVerifiesToo)
{
    auto sys = makeSystem(OsDesign::MultipleKernel, 3);
    ShardedKvStore store(*sys);
    store.populate();
    store.run(600);
    EXPECT_GT(store.crossShardRequests(), 0u);
    EXPECT_TRUE(store.verify());
}

TEST(ShardedKvstore, ExplicitExecRoutesToTheOwner)
{
    auto sys = makeSystem(OsDesign::FusedKernel, 2);
    ShardedKvStore store(*sys);
    store.populate();
    // Same-shard ingress: no forwarding.
    store.exec(KvOp::Get, 2, 0);
    EXPECT_EQ(store.crossShardRequests(), 0u);
    // Cross-shard ingress: exactly one forward.
    store.exec(KvOp::Set, 3, 0);
    EXPECT_EQ(store.crossShardRequests(), 1u);
    EXPECT_TRUE(store.verify());
}

TEST(ShardedKvstore, FourNodesScaleAggregateThroughput)
{
    double two = throughput(OsDesign::FusedKernel, 2, 2000);
    double four = throughput(OsDesign::FusedKernel, 4, 2000);
    EXPECT_GE(four, 1.5 * two)
        << "4-node fused aggregate throughput must be >= 1.5x 2-node"
        << " (got " << four / two << "x)";
}
