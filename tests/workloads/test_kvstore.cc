#include <gtest/gtest.h>

#include "stramash/workloads/kvstore.hh"

using namespace stramash;

namespace
{

class KvStoreTest : public testing::Test
{
  protected:
    KvStoreTest()
    {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.cachePluginEnabled = false; // functional mode (§9.2.8)
        sys_ = std::make_unique<System>(cfg);
        app_ = std::make_unique<App>(*sys_, 0);
        store_ = std::make_unique<KvStore>(*app_, 64, 256);
        store_->populate();
    }

    std::unique_ptr<System> sys_;
    std::unique_ptr<App> app_;
    std::unique_ptr<KvStore> store_;
};

} // namespace

TEST_F(KvStoreTest, OpNames)
{
    EXPECT_STREQ(kvOpName(KvOp::Get), "get");
    EXPECT_STREQ(kvOpName(KvOp::MSet), "mset");
    EXPECT_EQ(allKvOps().size(), 8u);
}

TEST_F(KvStoreTest, SetThenGetRoundTrip)
{
    std::vector<std::uint8_t> payload(256, 0x42);
    store_->exec(KvOp::Set, 5, payload.data());
    auto back = store_->getValue(5);
    EXPECT_EQ(back, payload);
}

TEST_F(KvStoreTest, ListPushPopSemantics)
{
    std::size_t len = store_->listLength();
    std::vector<std::uint8_t> payload(256, 0x11);
    store_->exec(KvOp::RPush, 0, payload.data());
    EXPECT_EQ(store_->listLength(), len + 1);
    store_->exec(KvOp::LPush, 0, payload.data());
    EXPECT_EQ(store_->listLength(), len + 2);
    store_->exec(KvOp::LPop, 0, nullptr);
    store_->exec(KvOp::RPop, 0, nullptr);
    EXPECT_EQ(store_->listLength(), len);
}

TEST_F(KvStoreTest, MSetWritesFourSlots)
{
    std::vector<std::uint8_t> payload(256, 0x77);
    store_->exec(KvOp::MSet, 3, payload.data());
    EXPECT_EQ(store_->getValue(3), payload);
    EXPECT_EQ(store_->getValue((3 + 97) % 64), payload);
}

TEST_F(KvStoreTest, OpsWorkAfterMigration)
{
    std::vector<std::uint8_t> payload(256, 0x9d);
    app_->migrateToNext();
    store_->exec(KvOp::Set, 7, payload.data());
    store_->exec(KvOp::SAdd, 9, payload.data());
    EXPECT_EQ(store_->getValue(7), payload);
    app_->migrateToNext();
    // Data written remotely reads back at the origin.
    EXPECT_EQ(store_->getValue(7), payload);
}

TEST_F(KvStoreTest, MeasureRoundAdvancesClock)
{
    app_->migrateToNext();
    Rng rng(1);
    Cycles c = store_->measureRound(KvOp::Get, 50, rng);
    EXPECT_GT(c, 0u);
}

TEST(KvStoreSocketPath, PopcornForwardsStramashUsesIpi)
{
    // The socket stays at the origin: remotely-served requests
    // forward it — two messages per request under Popcorn, one IPI
    // and zero messages under Stramash (§7.4 fused device access).
    auto run = [](OsDesign design, std::uint64_t &msgs,
                  std::uint64_t &ipis) {
        SystemConfig cfg;
        cfg.osDesign = design;
        cfg.memoryModel = MemoryModel::Shared;
        cfg.cachePluginEnabled = false;
        System sys(cfg);
        App app(sys, 0);
        KvStore store(app, 64, 256);
        store.populate();
        app.migrateToNext();
        // Warm the DB pages first so only socket forwarding remains.
        Rng warm(5);
        store.measureRound(KvOp::Get, 64, warm);
        auto msgs0 = sys.messagesSent();
        auto ipis0 = sys.machine().ipisReceived(0);
        Rng rng(3);
        store.measureRound(KvOp::Get, 10, rng);
        msgs = sys.messagesSent() - msgs0;
        ipis = sys.machine().ipisReceived(0) - ipis0;
    };
    std::uint64_t popMsgs = 0, popIpis = 0;
    run(OsDesign::MultipleKernel, popMsgs, popIpis);
    EXPECT_EQ(popMsgs, 20u); // request + response per request

    std::uint64_t fusedMsgs = 0, fusedIpis = 0;
    run(OsDesign::FusedKernel, fusedMsgs, fusedIpis);
    EXPECT_EQ(fusedMsgs, 0u);
    EXPECT_EQ(fusedIpis, 10u); // one doorbell IPI per request
}

TEST(KvStoreSocketPath, LocalServiceNeedsNeither)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.cachePluginEnabled = false;
    System sys(cfg);
    App app(sys, 0);
    KvStore store(app, 64, 256);
    store.populate();
    auto msgs0 = sys.messagesSent();
    Rng rng(3);
    store.measureRound(KvOp::Set, 10, rng);
    EXPECT_EQ(sys.messagesSent(), msgs0);
}

TEST(KvStoreSpeedup, StramashBeatsShmBeatsTcp)
{
    // Fig. 14's ordering, in miniature: serve rounds from the
    // remote side under the three configurations.
    auto measure = [](OsDesign design, Transport transport) {
        SystemConfig cfg;
        cfg.osDesign = design;
        cfg.transport = transport;
        cfg.memoryModel = MemoryModel::Shared;
        cfg.cachePluginEnabled = false;
        System sys(cfg);
        App app(sys, 0);
        KvStore store(app, 64, 256);
        store.populate();
        app.migrateToNext();
        Rng rng(7);
        Cycles total = 0;
        for (KvOp op : allKvOps())
            total += store.measureRound(op, 30, rng);
        return total;
    };

    Cycles tcp =
        measure(OsDesign::MultipleKernel, Transport::Network);
    Cycles shm =
        measure(OsDesign::MultipleKernel, Transport::SharedMemory);
    Cycles fused =
        measure(OsDesign::FusedKernel, Transport::SharedMemory);
    EXPECT_LT(shm, tcp);
    EXPECT_LT(fused, shm);
}
