#include <gtest/gtest.h>

#include "stramash/workloads/microbench.hh"

using namespace stramash;

namespace
{

std::unique_ptr<System>
makeSys(OsDesign design, MemoryModel model)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = model;
    cfg.transport = Transport::SharedMemory;
    return std::make_unique<System>(cfg);
}

constexpr Addr ubenchBytes = 1 << 20; // 1 MiB keeps tests fast

} // namespace

TEST(MemAccess, CaseNames)
{
    EXPECT_STREQ(memAccessCaseName(MemAccessCase::Vanilla), "Vanilla");
    EXPECT_STREQ(
        memAccessCaseName(MemAccessCase::RemoteAccessOriginNoCold),
        "RaO-NC");
    EXPECT_STREQ(memAccessCaseName(MemAccessCase::OriginAccessRemote),
                 "OaR");
}

TEST(MemAccess, VanillaIsCheapestForStramash)
{
    auto sys = makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
    Cycles vanilla =
        runMemAccessCase(*sys, MemAccessCase::Vanilla, ubenchBytes);
    sys = makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
    Cycles rao = runMemAccessCase(
        *sys, MemAccessCase::RemoteAccessOrigin, ubenchBytes);
    EXPECT_LT(vanilla, rao);
}

TEST(MemAccess, PopcornNoColdApproachesVanilla)
{
    // Fig. 11: once DSM has replicated, warm remote access is local.
    auto sys = makeSys(OsDesign::MultipleKernel, MemoryModel::Shared);
    Cycles vanilla =
        runMemAccessCase(*sys, MemAccessCase::Vanilla, ubenchBytes);
    sys = makeSys(OsDesign::MultipleKernel, MemoryModel::Shared);
    Cycles cold = runMemAccessCase(
        *sys, MemAccessCase::RemoteAccessOrigin, ubenchBytes);
    sys = makeSys(OsDesign::MultipleKernel, MemoryModel::Shared);
    Cycles warm = runMemAccessCase(
        *sys, MemAccessCase::RemoteAccessOriginNoCold, ubenchBytes);
    EXPECT_LT(warm, cold / 2);
    EXPECT_LT(warm, vanilla * 3); // close to local speed
}

TEST(MemAccess, StramashColdBeatsDsmCold)
{
    // Fig. 11: hardware coherence beats page replication on first
    // touch (Shared model).
    auto fused = makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
    Cycles f = runMemAccessCase(
        *fused, MemAccessCase::RemoteAccessOrigin, ubenchBytes);
    auto pop = makeSys(OsDesign::MultipleKernel, MemoryModel::Shared);
    Cycles p = runMemAccessCase(
        *pop, MemAccessCase::RemoteAccessOrigin, ubenchBytes);
    EXPECT_LT(f, p);
}

TEST(MemAccess, FullySharedRemovesRemotePenaltyForStramash)
{
    auto shared = makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
    Cycles sharedCost = runMemAccessCase(
        *shared, MemAccessCase::RemoteAccessOrigin, ubenchBytes);
    auto fully =
        makeSys(OsDesign::FusedKernel, MemoryModel::FullyShared);
    Cycles fullyCost = runMemAccessCase(
        *fully, MemAccessCase::RemoteAccessOrigin, ubenchBytes);
    EXPECT_LT(fullyCost, sharedCost);
}

TEST(Granularity, DsmOverheadShrinksWithLinesTouched)
{
    // Fig. 12: the DSM-vs-hardware ratio is huge at one cacheline
    // and shrinks toward ~2x at a full page.
    const unsigned pages = 32;
    auto ratioAt = [&](unsigned lines) {
        auto pop =
            makeSys(OsDesign::MultipleKernel, MemoryModel::Shared);
        Cycles dsm = runGranularityCase(*pop, lines, pages);
        auto fused =
            makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
        Cycles hw = runGranularityCase(*fused, lines, pages);
        return static_cast<double>(dsm) / static_cast<double>(hw);
    };
    double r1 = ratioAt(1);
    double r64 = ratioAt(64);
    // The paper reports >300x at one line; our modelled kernel
    // software paths are thinner than real Linux's, compressing the
    // extreme, but the shape — huge at fine grain, collapsing as
    // more of the replicated page is actually used — must hold.
    EXPECT_GT(r1, 8.0);
    EXPECT_LT(r64, r1 / 3);
    EXPECT_GT(r64, 0.8);
}

TEST(Granularity, CostGrowsWithLines)
{
    auto sys = makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
    Cycles c1 = runGranularityCase(*sys, 1, 16);
    sys = makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
    Cycles c64 = runGranularityCase(*sys, 64, 16);
    EXPECT_GT(c64, c1 * 8);
}

TEST(GranularityDeath, ZeroLinesPanics)
{
    auto sys = makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
    EXPECT_DEATH(runGranularityCase(*sys, 0, 4), "linesPerPage");
    EXPECT_DEATH(runGranularityCase(*sys, 65, 4), "linesPerPage");
}

class FutexPingPong : public testing::TestWithParam<OsDesign>
{
};

TEST_P(FutexPingPong, CounterIsExact)
{
    auto sys = makeSys(GetParam(), MemoryModel::Shared);
    // runFutexPingPong panics internally if updates are lost.
    Cycles c = runFutexPingPong(*sys, 50);
    EXPECT_GT(c, 0u);
}

INSTANTIATE_TEST_SUITE_P(Designs, FutexPingPong,
                         testing::Values(OsDesign::MultipleKernel,
                                         OsDesign::FusedKernel),
                         [](const auto &info) {
                             return std::string(
                                 osDesignName(info.param));
                         });

TEST(FutexPingPongCompare, StramashOptimizationWins)
{
    // Fig. 13: the futex-optimised (fused) path beats the full
    // message protocol, and the gap grows with the loop count.
    auto pop = makeSys(OsDesign::MultipleKernel, MemoryModel::Shared);
    Cycles p = runFutexPingPong(*pop, 200);
    auto fused = makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
    Cycles f = runFutexPingPong(*fused, 200);
    EXPECT_LT(f, p);
}

TEST(FutexPingPongCompare, ScalesLinearlyWithLoops)
{
    auto sys = makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
    Cycles c100 = runFutexPingPong(*sys, 100);
    sys = makeSys(OsDesign::FusedKernel, MemoryModel::Shared);
    Cycles c400 = runFutexPingPong(*sys, 400);
    EXPECT_GT(c400, 3 * c100);
    EXPECT_LT(c400, 6 * c100);
}
