#include <gtest/gtest.h>

#include "stramash/workloads/npb.hh"

using namespace stramash;

namespace
{

NpbConfig
tinyConfig(bool migrate)
{
    NpbConfig cfg;
    cfg.iterations = 2;
    cfg.problemBytes = 256 * 1024;
    cfg.migrate = migrate;
    cfg.seed = 7;
    return cfg;
}

NpbResult
runOn(OsDesign design, const std::string &kernel, bool migrate,
      MemoryModel model = MemoryModel::Shared)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = model;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);
    App app(sys, 0);
    return makeNpbKernel(kernel)->run(app, tinyConfig(migrate));
}

} // namespace

TEST(NpbFactory, KnownKernels)
{
    for (const auto &name : npbKernelNames()) {
        auto k = makeNpbKernel(name);
        ASSERT_NE(k, nullptr);
        EXPECT_EQ(k->name(), name);
    }
    EXPECT_EQ(npbKernelNames().size(), 4u);
}

TEST(NpbFactoryDeath, UnknownKernelIsFatal)
{
    EXPECT_EXIT(makeNpbKernel("lu"), testing::ExitedWithCode(1),
                "unknown NPB kernel");
}

/** Every kernel verifies on every design, migrating or not. */
class NpbMatrix
    : public testing::TestWithParam<
          std::tuple<std::string, OsDesign, bool>>
{
};

TEST_P(NpbMatrix, ComputesCorrectResult)
{
    auto [kernel, design, migrate] = GetParam();
    NpbResult r = runOn(design, kernel, migrate);
    EXPECT_TRUE(r.verified)
        << kernel << " failed verification on "
        << osDesignName(design)
        << (migrate ? " with migration" : " vanilla");
    EXPECT_NE(r.checksum, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, NpbMatrix,
    testing::Combine(testing::Values(std::string("is"),
                                     std::string("cg"),
                                     std::string("mg"),
                                     std::string("ft")),
                     testing::Values(OsDesign::MultipleKernel,
                                     OsDesign::FusedKernel),
                     testing::Bool()),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               osDesignName(std::get<1>(info.param)) +
               (std::get<2>(info.param) ? "_migrating" : "_vanilla");
    });

TEST(Npb, ChecksumIndependentOfOsDesign)
{
    // The answer is a property of the workload, not of the OS.
    for (const auto &name : npbKernelNames()) {
        NpbResult a = runOn(OsDesign::MultipleKernel, name, true);
        NpbResult b = runOn(OsDesign::FusedKernel, name, true);
        NpbResult c = runOn(OsDesign::FusedKernel, name, false);
        EXPECT_EQ(a.checksum, b.checksum) << name;
        EXPECT_EQ(b.checksum, c.checksum) << name;
    }
}

TEST(Npb, DeterministicForFixedSeed)
{
    NpbResult a = runOn(OsDesign::FusedKernel, "is", true);
    NpbResult b = runOn(OsDesign::FusedKernel, "is", true);
    EXPECT_EQ(a.checksum, b.checksum);
}

TEST(Npb, SeedChangesChecksum)
{
    SystemConfig cfg;
    System sys(cfg);
    App a(sys, 0);
    NpbConfig c1 = tinyConfig(false);
    NpbResult r1 = makeNpbKernel("is")->run(a, c1);
    App b(sys, 0);
    NpbConfig c2 = tinyConfig(false);
    c2.seed = 8;
    NpbResult r2 = makeNpbKernel("is")->run(b, c2);
    EXPECT_NE(r1.checksum, r2.checksum);
}

TEST(Npb, MigratingRunCostsMoreThanVanilla)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.memoryModel = MemoryModel::Shared;

    System vanillaSys(cfg);
    App vanillaApp(vanillaSys, 0);
    makeNpbKernel("is")->run(vanillaApp, tinyConfig(false));

    System migSys(cfg);
    App migApp(migSys, 0);
    makeNpbKernel("is")->run(migApp, tinyConfig(true));

    EXPECT_GT(migSys.runtime(), vanillaSys.runtime());
}

TEST(Npb, PopcornGeneratesFarMoreMessagesThanStramash)
{
    SystemConfig cfg;
    cfg.memoryModel = MemoryModel::Shared;

    cfg.osDesign = OsDesign::MultipleKernel;
    System popcorn(cfg);
    App pApp(popcorn, 0);
    popcorn.resetExperimentCounters();
    makeNpbKernel("mg")->run(pApp, tinyConfig(true));

    cfg.osDesign = OsDesign::FusedKernel;
    System fused(cfg);
    App fApp(fused, 0);
    fused.resetExperimentCounters();
    makeNpbKernel("mg")->run(fApp, tinyConfig(true));

    // Table 3's headline: >99% message reduction.
    EXPECT_GT(popcorn.messagesSent(), 100 * fused.messagesSent());
}

TEST(Npb, FtTriggersRemoteAllocations)
{
    // FT allocates fresh scratch buffers while remote: under the
    // fused design these become foreign-format insertions (Table
    // 3's Stramash "replicated pages").
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    System sys(cfg);
    App app(sys, 0);
    sys.resetExperimentCounters();
    makeNpbKernel("ft")->run(app, tinyConfig(true));
    EXPECT_GT(sys.replicatedPages(), 10u);

    // IS keeps its arrays origin-touched: near-zero insertions.
    System sys2(cfg);
    App app2(sys2, 0);
    sys2.resetExperimentCounters();
    makeNpbKernel("is")->run(app2, tinyConfig(true));
    EXPECT_LT(sys2.replicatedPages(), sys.replicatedPages() / 2);
}
