#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>

#include "stramash/trace/json_stats.hh"

using namespace stramash;

TEST(JsonStatsExporter, EmptyDocument)
{
    JsonStatsExporter exporter;
    std::ostringstream os;
    exporter.write(os);
    std::string json = os.str();
    json.erase(std::remove_if(json.begin(), json.end(),
                              [](unsigned char c) {
                                  return std::isspace(c);
                              }),
               json.end());
    EXPECT_EQ(json, "{\"groups\":{}}");
}

TEST(JsonStatsExporter, CountersAndHistograms)
{
    StatGroup g("kernel.node0");
    g.counter("page_faults") += 12;
    g.counter("anon_faults") += 3;
    Histogram &h = g.histogram("latency", {10, 100});
    h.sample(5);
    h.sample(50);
    h.sample(500);

    JsonStatsExporter exporter;
    exporter.add(g);
    EXPECT_EQ(exporter.groupCount(), 1u);

    std::ostringstream os;
    exporter.write(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"kernel.node0\""), std::string::npos);
    EXPECT_NE(json.find("\"page_faults\":12"), std::string::npos);
    EXPECT_NE(json.find("\"anon_faults\":3"), std::string::npos);
    EXPECT_NE(json.find("\"latency\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":3"), std::string::npos);
    EXPECT_NE(json.find("\"min\":5"), std::string::npos);
    EXPECT_NE(json.find("\"max\":500"), std::string::npos);
    EXPECT_NE(json.find("\"edges\":[10,100]"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[1,1,1]"), std::string::npos);
}

TEST(JsonStatsExporter, SnapshotIsStable)
{
    JsonStatsExporter exporter;
    {
        StatGroup g("gone");
        g.counter("c") += 1;
        exporter.add(g);
        g.counter("c") += 100; // after the snapshot
    } // group destroyed entirely
    std::ostringstream os;
    exporter.write(os);
    EXPECT_NE(os.str().find("\"c\":1"), std::string::npos);
}

TEST(JsonStatsExporter, GroupsObjectEmbeds)
{
    StatGroup g("msg");
    g.counter("sent_total") += 4;
    JsonStatsExporter exporter;
    exporter.add(g);
    std::ostringstream os;
    exporter.writeGroupsObject(os);
    std::string obj = os.str();
    EXPECT_EQ(obj.front(), '{');
    EXPECT_EQ(obj.back(), '}');
    EXPECT_NE(obj.find("\"sent_total\":4"), std::string::npos);
}
