#include <gtest/gtest.h>

#include <set>
#include <string>

#include "stramash/trace/trace.hh"

using namespace stramash;

namespace
{

TraceEvent
ev(std::uint64_t seq)
{
    TraceEvent e{};
    e.category = TraceCategory::App;
    e.name = "ev";
    e.node = 0;
    e.startCycles = seq;
    e.endCycles = seq;
    e.arg0 = seq;
    return e;
}

/** A tracer whose per-node clocks the test advances by hand. */
struct ManualClock
{
    std::vector<Cycles> t;

    explicit ManualClock(std::size_t nodes) : t(nodes, 0) {}

    Tracer::ClockFn
    fn()
    {
        return [this](NodeId n) { return t[n]; };
    }
};

} // namespace

TEST(TraceBuffer, RecordsInOrderBelowCapacity)
{
    TraceBuffer buf(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        buf.record(ev(i));
    EXPECT_EQ(buf.size(), 5u);
    EXPECT_EQ(buf.dropped(), 0u);
    EXPECT_EQ(buf.recorded(), 5u);
    auto snap = buf.snapshot();
    ASSERT_EQ(snap.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(snap[i].arg0, i);
}

TEST(TraceBuffer, WrapsDroppingOldest)
{
    TraceBuffer buf(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        buf.record(ev(i));
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.dropped(), 6u);
    EXPECT_EQ(buf.recorded(), 10u);
    // The survivors are the newest four, oldest first.
    auto snap = buf.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(snap[i].arg0, 6 + i);
}

TEST(TraceBuffer, ClearEmptiesButKeepsCapacity)
{
    TraceBuffer buf(4);
    for (std::uint64_t i = 0; i < 6; ++i)
        buf.record(ev(i));
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.capacity(), 4u);
    buf.record(ev(42));
    auto snap = buf.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].arg0, 42u);
}

TEST(Tracer, DisabledRecordsNothing)
{
    ManualClock clock(2);
    TraceConfig cfg; // enabled = false
    Tracer tracer(cfg, 2, clock.fn());
    EXPECT_FALSE(tracer.enabled());
    EXPECT_FALSE(tracer.enabledFor(TraceCategory::Fault));
    tracer.emit(TraceCategory::Fault, "f", 0, 0, 1, 2);
    tracer.instant(TraceCategory::Msg, "m", 1);
    {
        STRAMASH_TRACE_SPAN(tracer, TraceCategory::Ipi, "i", 0);
    }
    EXPECT_EQ(tracer.totalEvents(), 0u);
    EXPECT_EQ(tracer.totalDropped(), 0u);
}

TEST(Tracer, CategoryMaskFilters)
{
    ManualClock clock(1);
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.categoryMask = traceCategoryBit(TraceCategory::Fault);
    Tracer tracer(cfg, 1, clock.fn());
    EXPECT_TRUE(tracer.enabledFor(TraceCategory::Fault));
    EXPECT_FALSE(tracer.enabledFor(TraceCategory::Msg));
    tracer.instant(TraceCategory::Fault, "f", 0);
    tracer.instant(TraceCategory::Msg, "m", 0);
    EXPECT_EQ(tracer.totalEvents(), 1u);
    EXPECT_STREQ(tracer.buffer(0).snapshot()[0].name, "f");
}

TEST(Tracer, SpanReadsClockAtBothEnds)
{
    ManualClock clock(1);
    TraceConfig cfg;
    cfg.enabled = true;
    Tracer tracer(cfg, 1, clock.fn());
    clock.t[0] = 100;
    {
        STRAMASH_TRACE_SPAN(tracer, TraceCategory::App, "work", 0, 7);
        clock.t[0] = 250;
    }
    auto snap = tracer.buffer(0).snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].startCycles, 100u);
    EXPECT_EQ(snap[0].endCycles, 250u);
    EXPECT_EQ(snap[0].pid, 7u);
}

TEST(Tracer, MergedSortsAcrossNodes)
{
    ManualClock clock(2);
    TraceConfig cfg;
    cfg.enabled = true;
    Tracer tracer(cfg, 2, clock.fn());
    tracer.emit(TraceCategory::App, "b", 1, 0, 20, 21);
    tracer.emit(TraceCategory::App, "a", 0, 0, 10, 12);
    tracer.emit(TraceCategory::App, "c", 0, 0, 30, 31);
    auto merged = tracer.merged();
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_STREQ(merged[0].name, "a");
    EXPECT_STREQ(merged[1].name, "b");
    EXPECT_STREQ(merged[2].name, "c");
}

TEST(Tracer, PerNodeBuffersDropIndependently)
{
    ManualClock clock(2);
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.bufferEntries = 2;
    Tracer tracer(cfg, 2, clock.fn());
    for (int i = 0; i < 5; ++i)
        tracer.instant(TraceCategory::App, "x", 0);
    tracer.instant(TraceCategory::App, "y", 1);
    EXPECT_EQ(tracer.buffer(0).dropped(), 3u);
    EXPECT_EQ(tracer.buffer(1).dropped(), 0u);
    EXPECT_EQ(tracer.totalDropped(), 3u);
    EXPECT_EQ(tracer.totalEvents(), 3u);
}

TEST(TracerDeath, NeedsClock)
{
    TraceConfig cfg;
    EXPECT_DEATH(Tracer(cfg, 1, nullptr), "clock");
}

TEST(TraceCategoryNames, AllDistinct)
{
    std::set<std::string> names;
    for (unsigned i = 0; i < traceCategoryCount; ++i)
        names.insert(
            traceCategoryName(static_cast<TraceCategory>(i)));
    EXPECT_EQ(names.size(), traceCategoryCount);
}
