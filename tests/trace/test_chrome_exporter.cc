#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "stramash/trace/chrome_exporter.hh"

using namespace stramash;

namespace
{

/**
 * Minimal recursive-descent JSON validator: value grammar only, no
 * semantics. Returns true iff the whole input is one valid document.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;

    bool eof() const { return pos_ >= s_.size(); }
    char peek() const { return s_[pos_]; }

    void
    skipWs()
    {
        while (!eof() && std::isspace(static_cast<unsigned char>(peek())))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (eof() || peek() != '"')
            return false;
        ++pos_;
        while (!eof() && peek() != '"') {
            if (peek() == '\\') {
                ++pos_;
                if (eof())
                    return false;
            }
            ++pos_;
        }
        if (eof())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (!eof() && peek() == '-')
            ++pos_;
        while (!eof() && (std::isdigit(static_cast<unsigned char>(
                              peek())) ||
                          peek() == '.' || peek() == 'e' ||
                          peek() == 'E' || peek() == '+' ||
                          peek() == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    value()
    {
        skipWs();
        if (eof())
            return false;
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (!eof() && peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (eof() || peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (eof())
                return false;
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (!eof() && peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (eof())
                return false;
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }
};

/** Every `"ts":<n>` value in document order. */
std::vector<std::uint64_t>
timestamps(const std::string &json)
{
    std::vector<std::uint64_t> out;
    std::size_t pos = 0;
    const std::string key = "\"ts\":";
    while ((pos = json.find(key, pos)) != std::string::npos) {
        pos += key.size();
        out.push_back(std::stoull(json.substr(pos)));
    }
    return out;
}

class ExporterTest : public testing::Test
{
  protected:
    ExporterTest()
        : clock_(2, 0),
          tracer_(enabledConfig(), 2,
                  [this](NodeId n) { return clock_[n]; })
    {
    }

    static TraceConfig
    enabledConfig()
    {
        TraceConfig cfg;
        cfg.enabled = true;
        return cfg;
    }

    std::string
    exported()
    {
        ChromeTraceExporter exporter(tracer_);
        exporter.setNodeLabel(0, "node0 (x86_64)");
        exporter.setNodeLabel(1, "node1 (aarch64)");
        std::ostringstream os;
        exporter.write(os);
        return os.str();
    }

    std::vector<Cycles> clock_;
    Tracer tracer_;
};

} // namespace

TEST_F(ExporterTest, EmptyTraceIsValidJson)
{
    std::string json = exported();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"timestampUnit\":\"cycles\""),
              std::string::npos);
}

TEST_F(ExporterTest, EventsProduceValidJsonWithPerNodeTracks)
{
    tracer_.emit(TraceCategory::Fault, "fault.handle", 0, 7, 10, 50,
                 0xdeadbeef, 1);
    tracer_.emit(TraceCategory::Msg, "page_request", 1, 7, 20, 90);
    std::string json = exported();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;

    // Track metadata for both nodes, with pid = node id.
    EXPECT_NE(json.find("\"name\":\"node0 (x86_64)\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"node1 (aarch64)\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\",\"pid\":0"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\",\"pid\":1"), std::string::npos);

    // Complete events carry category, duration and args.
    EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"msg\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":40"), std::string::npos);
    EXPECT_NE(json.find("\"arg0\":3735928559"), std::string::npos);
}

TEST_F(ExporterTest, SchedulerEventsExportUnderTheSchedCategory)
{
    clock_[1] = 42;
    tracer_.instant(TraceCategory::Sched, "sched.place", 1, 9, 2, 0);
    tracer_.instant(TraceCategory::Sched, "sched.steal", 1, 0, 1, 8);
    std::string json = exported();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"cat\":\"sched\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"sched.place\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"sched.steal\""),
              std::string::npos);
}

TEST_F(ExporterTest, TimestampsAreMonotone)
{
    // Emit out of order across nodes; the exporter merges by start
    // cycle.
    tracer_.emit(TraceCategory::App, "c", 1, 0, 300, 310);
    tracer_.emit(TraceCategory::App, "a", 0, 0, 100, 110);
    tracer_.emit(TraceCategory::App, "d", 0, 0, 400, 410);
    tracer_.emit(TraceCategory::App, "b", 1, 0, 200, 210);
    std::string json = exported();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;

    auto ts = timestamps(json);
    ASSERT_EQ(ts.size(), 4u);
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_LE(ts[i - 1], ts[i]);
}

TEST_F(ExporterTest, InstantEventsHaveZeroDuration)
{
    clock_[0] = 123;
    tracer_.instant(TraceCategory::Ipi, "ipi.deliver", 0, 0, 1, 0);
    std::string json = exported();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"ts\":123,\"dur\":0"), std::string::npos);
}

TEST_F(ExporterTest, EscapesSpecialCharactersInLabels)
{
    ChromeTraceExporter exporter(tracer_);
    exporter.setNodeLabel(0, "weird \"quote\"\nlabel");
    std::ostringstream os;
    exporter.write(os);
    std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("weird \\\"quote\\\"\\nlabel"),
              std::string::npos);
}

TEST_F(ExporterTest, ReportsDroppedEvents)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.bufferEntries = 2;
    Tracer small(cfg, 1, [](NodeId) { return Cycles{0}; });
    for (int i = 0; i < 5; ++i)
        small.instant(TraceCategory::App, "x", 0);
    ChromeTraceExporter exporter(small);
    std::ostringstream os;
    exporter.write(os);
    std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"droppedEvents\":3"), std::string::npos);
}
