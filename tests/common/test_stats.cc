#include <gtest/gtest.h>

#include <sstream>

#include "stramash/common/stats.hh"

using namespace stramash;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatGroup, CounterPointersAreStable)
{
    StatGroup g("g");
    Counter &a = g.counter("a");
    a += 7;
    for (int i = 0; i < 100; ++i)
        g.counter("x" + std::to_string(i));
    EXPECT_EQ(&g.counter("a"), &a);
    EXPECT_EQ(g.value("a"), 7u);
}

TEST(StatGroup, ValueOfUnknownCounterIsZero)
{
    StatGroup g("g");
    EXPECT_FALSE(g.has("nope"));
    EXPECT_EQ(g.value("nope"), 0u);
}

TEST(StatGroup, ResetAll)
{
    StatGroup g("g");
    g.counter("a") += 3;
    g.counter("b") += 5;
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
    EXPECT_EQ(g.value("b"), 0u);
}

TEST(StatGroup, DumpSortedWithPrefix)
{
    StatGroup g("grp");
    g.counter("beta") += 2;
    g.counter("alpha") += 1;
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "grp.alpha 1\ngrp.beta 2\n");
}

TEST(StatGroup, SnapshotDiffing)
{
    StatGroup g("g");
    g.counter("a") += 3;
    auto before = g.snapshot();
    g.counter("a") += 4;
    auto after = g.snapshot();
    EXPECT_EQ(after["a"] - before["a"], 4u);
}

TEST(Histogram, BucketsAndStats)
{
    Histogram h({10, 100, 1000});
    h.sample(5);
    h.sample(10);
    h.sample(99);
    h.sample(500);
    h.sample(5000);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.minValue(), 5u);
    EXPECT_EQ(h.maxValue(), 5000u);
    EXPECT_EQ(h.buckets()[0], 1u); // < 10
    EXPECT_EQ(h.buckets()[1], 2u); // [10, 100)
    EXPECT_EQ(h.buckets()[2], 1u); // [100, 1000)
    EXPECT_EQ(h.buckets()[3], 1u); // overflow
    EXPECT_DOUBLE_EQ(h.mean(), (5 + 10 + 99 + 500 + 5000) / 5.0);
}

TEST(HistogramDeath, NoEdgesPanics)
{
    EXPECT_DEATH(Histogram({}), "no bucket edges");
}

TEST(Histogram, PercentileEmptyIsZero)
{
    Histogram h({10, 100});
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, PercentileSingleSample)
{
    Histogram h({10, 100});
    h.sample(42);
    // Every percentile collapses to the one observed value.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
}

TEST(Histogram, PercentileInterpolatesWithinBucket)
{
    Histogram h({100});
    // Ten samples in [0, 100): p50 lands mid-bucket, interpolated
    // between the observed min and the bucket edge.
    for (std::uint64_t v = 0; v < 10; ++v)
        h.sample(v * 10);
    double p50 = h.percentile(0.5);
    EXPECT_GT(p50, 0.0);
    EXPECT_LT(p50, 90.0);
    // Percentiles are monotone in p.
    EXPECT_LE(h.percentile(0.1), h.percentile(0.5));
    EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
    EXPECT_LE(h.percentile(0.9),
              static_cast<double>(h.maxValue()));
}

TEST(Histogram, PercentileTailLandsInOverflowBucket)
{
    Histogram h({10});
    for (int i = 0; i < 99; ++i)
        h.sample(1);
    h.sample(1000);
    // p99+ must reach into the overflow bucket, clamped to max.
    EXPECT_GT(h.percentile(0.999), 10.0);
    EXPECT_LE(h.percentile(0.999), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
    // Out-of-range p clamps instead of exploding.
    EXPECT_DOUBLE_EQ(h.percentile(1.5), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), 1.0);
}

TEST(Histogram, Reset)
{
    Histogram h({10});
    h.sample(5);
    h.sample(50);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.sample(7);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.minValue(), 7u);
}

TEST(Histogram, MergeCombinesCountsBucketsAndExtremes)
{
    Histogram a({10, 100, 1000});
    Histogram b({10, 100, 1000});
    a.sample(5);
    a.sample(50);
    b.sample(500);
    b.sample(5000);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.minValue(), 5u);
    EXPECT_EQ(a.maxValue(), 5000u);
    EXPECT_EQ(a.buckets()[0], 1u);
    EXPECT_EQ(a.buckets()[1], 1u);
    EXPECT_EQ(a.buckets()[2], 1u);
    EXPECT_EQ(a.buckets()[3], 1u);
    EXPECT_DOUBLE_EQ(a.mean(), (5 + 50 + 500 + 5000) / 4.0);
    // b is untouched.
    EXPECT_EQ(b.count(), 2u);
}

TEST(Histogram, MergeEmptySidesAreIdentity)
{
    Histogram a({10});
    Histogram b({10});
    b.sample(3);
    b.sample(30);

    // empty.merge(full) adopts full's extremes (min must not stay 0).
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.minValue(), 3u);
    EXPECT_EQ(a.maxValue(), 30u);

    // full.merge(empty) changes nothing.
    Histogram empty({10});
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.minValue(), 3u);
}

TEST(Histogram, MergeThenResetRoundTrips)
{
    Histogram a({10});
    Histogram b({10});
    a.sample(1);
    b.sample(100);
    a.merge(b);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    a.sample(4);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.minValue(), 4u);
    EXPECT_EQ(a.maxValue(), 4u);
}

TEST(HistogramDeath, MergeMismatchedEdgesPanics)
{
    Histogram a({10});
    Histogram b({10, 100});
    EXPECT_DEATH(a.merge(b), "mismatched bucket edges");
}

TEST(StatGroup, HistogramRegistrationAndLookup)
{
    StatGroup g("g");
    EXPECT_FALSE(g.hasHistogram("lat"));
    EXPECT_EQ(g.findHistogram("lat"), nullptr);
    Histogram &h = g.histogram("lat", {10, 100});
    h.sample(3);
    // Second registration returns the same histogram; edges of the
    // first call win.
    Histogram &again = g.histogram("lat", {1, 2, 3});
    EXPECT_EQ(&again, &h);
    EXPECT_EQ(again.count(), 1u);
    ASSERT_TRUE(g.hasHistogram("lat"));
    EXPECT_EQ(g.findHistogram("lat"), &h);
}

TEST(StatGroup, DumpDistinguishesHistogramsFromCounters)
{
    StatGroup g("grp");
    g.counter("alpha") += 1;
    Histogram &h = g.histogram("lat", {10});
    h.sample(4);
    h.sample(40);
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    // Counter lines keep the historical exact format.
    EXPECT_NE(out.find("grp.alpha 1\n"), std::string::npos);
    // Histogram lines carry the "hist" marker token plus summary
    // statistics, so parsers can split on it.
    EXPECT_NE(out.find("grp.lat hist count=2 min=4 max=40"),
              std::string::npos);
    EXPECT_NE(out.find("p50="), std::string::npos);
    EXPECT_NE(out.find("p99="), std::string::npos);
}

TEST(StatGroup, ResetAllClearsHistograms)
{
    StatGroup g("g");
    g.histogram("lat", {10}).sample(5);
    g.resetAll();
    EXPECT_EQ(g.histogram("lat", {10}).count(), 0u);
}
