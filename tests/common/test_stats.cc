#include <gtest/gtest.h>

#include <sstream>

#include "stramash/common/stats.hh"

using namespace stramash;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatGroup, CounterPointersAreStable)
{
    StatGroup g("g");
    Counter &a = g.counter("a");
    a += 7;
    for (int i = 0; i < 100; ++i)
        g.counter("x" + std::to_string(i));
    EXPECT_EQ(&g.counter("a"), &a);
    EXPECT_EQ(g.value("a"), 7u);
}

TEST(StatGroup, ValueOfUnknownCounterIsZero)
{
    StatGroup g("g");
    EXPECT_FALSE(g.has("nope"));
    EXPECT_EQ(g.value("nope"), 0u);
}

TEST(StatGroup, ResetAll)
{
    StatGroup g("g");
    g.counter("a") += 3;
    g.counter("b") += 5;
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
    EXPECT_EQ(g.value("b"), 0u);
}

TEST(StatGroup, DumpSortedWithPrefix)
{
    StatGroup g("grp");
    g.counter("beta") += 2;
    g.counter("alpha") += 1;
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "grp.alpha 1\ngrp.beta 2\n");
}

TEST(StatGroup, SnapshotDiffing)
{
    StatGroup g("g");
    g.counter("a") += 3;
    auto before = g.snapshot();
    g.counter("a") += 4;
    auto after = g.snapshot();
    EXPECT_EQ(after["a"] - before["a"], 4u);
}

TEST(Histogram, BucketsAndStats)
{
    Histogram h({10, 100, 1000});
    h.sample(5);
    h.sample(10);
    h.sample(99);
    h.sample(500);
    h.sample(5000);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.minValue(), 5u);
    EXPECT_EQ(h.maxValue(), 5000u);
    EXPECT_EQ(h.buckets()[0], 1u); // < 10
    EXPECT_EQ(h.buckets()[1], 2u); // [10, 100)
    EXPECT_EQ(h.buckets()[2], 1u); // [100, 1000)
    EXPECT_EQ(h.buckets()[3], 1u); // overflow
    EXPECT_DOUBLE_EQ(h.mean(), (5 + 10 + 99 + 500 + 5000) / 5.0);
}

TEST(HistogramDeath, NoEdgesPanics)
{
    EXPECT_DEATH(Histogram({}), "no bucket edges");
}
