#include <gtest/gtest.h>

#include <set>

#include "stramash/common/addr_range.hh"
#include "stramash/common/rng.hh"

using namespace stramash;

TEST(AddrRange, Basics)
{
    AddrRange r{0x1000, 0x3000};
    EXPECT_EQ(r.size(), 0x2000u);
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(r.contains(0x1000));
    EXPECT_TRUE(r.contains(0x2fff));
    EXPECT_FALSE(r.contains(0x3000));
    EXPECT_FALSE(r.contains(0xfff));
}

TEST(AddrRange, OverlapAndContainment)
{
    AddrRange a{0x1000, 0x3000};
    EXPECT_TRUE(a.overlaps({0x2000, 0x4000}));
    EXPECT_TRUE(a.overlaps({0x0, 0x1001}));
    EXPECT_FALSE(a.overlaps({0x3000, 0x4000}));
    EXPECT_FALSE(a.overlaps({0x0, 0x1000}));
    EXPECT_TRUE(a.containsRange({0x1800, 0x2000}));
    EXPECT_FALSE(a.containsRange({0x2800, 0x3001}));
}

TEST(IntervalSet, InsertCoalescesAdjacent)
{
    IntervalSet s;
    s.insert(0x1000, 0x2000);
    s.insert(0x2000, 0x3000);
    EXPECT_EQ(s.extentCount(), 1u);
    EXPECT_TRUE(s.containsRange(0x1000, 0x3000));
}

TEST(IntervalSet, InsertCoalescesOverlapping)
{
    IntervalSet s;
    s.insert(0x1000, 0x2800);
    s.insert(0x2000, 0x4000);
    s.insert(0x500, 0x1100);
    EXPECT_EQ(s.extentCount(), 1u);
    EXPECT_TRUE(s.containsRange(0x500, 0x4000));
    EXPECT_EQ(s.totalBytes(), 0x4000u - 0x500u);
}

TEST(IntervalSet, EraseSplits)
{
    IntervalSet s;
    s.insert(0x1000, 0x4000);
    s.erase(0x2000, 0x3000);
    EXPECT_EQ(s.extentCount(), 2u);
    EXPECT_TRUE(s.contains(0x1fff));
    EXPECT_FALSE(s.contains(0x2000));
    EXPECT_FALSE(s.contains(0x2fff));
    EXPECT_TRUE(s.contains(0x3000));
}

TEST(IntervalSet, EraseAcrossExtents)
{
    IntervalSet s;
    s.insert(0x1000, 0x2000);
    s.insert(0x3000, 0x4000);
    s.insert(0x5000, 0x6000);
    s.erase(0x1800, 0x5800);
    EXPECT_TRUE(s.containsRange(0x1000, 0x1800));
    EXPECT_TRUE(s.containsRange(0x5800, 0x6000));
    EXPECT_FALSE(s.contains(0x3000));
    EXPECT_EQ(s.extentCount(), 2u);
}

TEST(IntervalSet, AllocateCarvesLowestFit)
{
    IntervalSet s;
    s.insert(0x1000, 0x2000);
    s.insert(0x8000, 0x20000);
    auto r = s.allocate(0x4000);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->start, 0x8000u);
    EXPECT_EQ(r->size(), 0x4000u);
    EXPECT_FALSE(s.contains(0x8000));
    EXPECT_TRUE(s.contains(0xc000));
}

TEST(IntervalSet, AllocateFailsWhenNothingFits)
{
    IntervalSet s;
    s.insert(0x1000, 0x2000);
    EXPECT_FALSE(s.allocate(0x2000).has_value());
    EXPECT_TRUE(s.allocate(0x1000).has_value());
    EXPECT_TRUE(s.empty());
}

/** Property: IntervalSet agrees with a page-granular reference set. */
TEST(IntervalSetProperty, MatchesReferenceModel)
{
    Rng rng(2024);
    IntervalSet s;
    std::set<Addr> ref; // one entry per page

    const Addr space = 256; // pages
    for (int step = 0; step < 2000; ++step) {
        Addr lo = rng.below(space - 1);
        Addr hi = lo + 1 + rng.below(static_cast<std::uint32_t>(
                               space - lo - 1));
        if (rng.chance(0.5)) {
            s.insert(lo * pageSize, hi * pageSize);
            for (Addr p = lo; p < hi; ++p)
                ref.insert(p);
        } else {
            s.erase(lo * pageSize, hi * pageSize);
            for (Addr p = lo; p < hi; ++p)
                ref.erase(p);
        }
        // Spot-check containment at random pages.
        for (int probe = 0; probe < 8; ++probe) {
            Addr p = rng.below(space);
            EXPECT_EQ(s.contains(p * pageSize), ref.count(p) != 0)
                << "page " << p << " step " << step;
        }
        EXPECT_EQ(s.totalBytes(), ref.size() * pageSize);
    }
}

TEST(IntervalSetDeath, EmptyInsertPanics)
{
    IntervalSet s;
    EXPECT_DEATH(s.insert(0x1000, 0x1000), "empty");
}
