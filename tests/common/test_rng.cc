#include <gtest/gtest.h>

#include "stramash/common/rng.hh"

using namespace stramash;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(1234, 7);
    Rng b(1234, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DistinctSequencesForDistinctSeeds)
{
    Rng a(1, 7);
    Rng b(2, 7);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, DistinctSequencesForDistinctStreams)
{
    Rng a(1, 7);
    Rng b(1, 8);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(99);
    for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 30}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, Below64RespectsBound)
{
    Rng rng(99);
    std::uint64_t big = (std::uint64_t{1} << 40) + 12345;
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below64(big), big);
}

TEST(Rng, BelowCoversSmallRangeUniformly)
{
    Rng rng(5);
    int counts[8] = {};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.below(8)];
    for (int c : counts) {
        EXPECT_GT(c, 800);
        EXPECT_LT(c, 1200);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(17);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(23);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngDeath, BelowZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "below");
}
