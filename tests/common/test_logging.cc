#include <gtest/gtest.h>

#include "stramash/common/logging.hh"
#include "stramash/common/types.hh"
#include "stramash/common/units.hh"

using namespace stramash;

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom ", 42), "boom 42");
}

TEST(LoggingDeath, PanicIfTriggersOnTrue)
{
    EXPECT_DEATH(panic_if(true, "cond held"), "cond held");
}

TEST(Logging, PanicIfPassesOnFalse)
{
    panic_if(false, "never");
    SUCCEED();
}

TEST(LoggingDeath, FatalExitsWithCode1)
{
    EXPECT_EXIT(fatal("user error"), testing::ExitedWithCode(1),
                "user error");
}

TEST(Logging, QuietSuppressesWarnings)
{
    setQuiet(true);
    EXPECT_TRUE(quiet());
    warn("should not crash");
    inform("nor this");
    setQuiet(false);
    EXPECT_FALSE(quiet());
}

TEST(Types, PageHelpers)
{
    EXPECT_EQ(pageBase(0x1234), 0x1000u);
    EXPECT_EQ(pageOffset(0x1234), 0x234u);
    EXPECT_EQ(pageAlignUp(0x1001), 0x2000u);
    EXPECT_EQ(pageAlignUp(0x1000), 0x1000u);
    EXPECT_EQ(lineBase(0x12f), 0x100u);
}

TEST(Types, Names)
{
    EXPECT_STREQ(isaName(IsaType::X86_64), "x86-64");
    EXPECT_STREQ(isaName(IsaType::AArch64), "aarch64");
    EXPECT_STREQ(memoryModelName(MemoryModel::Shared), "Shared");
    EXPECT_STREQ(osDesignName(OsDesign::FusedKernel), "FusedKernel");
    EXPECT_STREQ(transportName(Transport::Network), "TCP");
    EXPECT_STREQ(memoryClassName(MemoryClass::SharedPool),
                 "SharedPool");
}

TEST(Units, SizeLiterals)
{
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
}

TEST(Units, TimeConversionRoundTrips)
{
    // 2 us at 2.1 GHz = 4200 cycles.
    EXPECT_EQ(usToCycles(2.0, 2.1), 4200u);
    EXPECT_DOUBLE_EQ(cyclesToUs(4200, 2.1), 2.0);
    // 75 us at 2.0 GHz = 150000 cycles.
    EXPECT_EQ(usToCycles(75.0, 2.0), 150000u);
}
