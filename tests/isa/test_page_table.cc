#include <gtest/gtest.h>

#include "stramash/common/rng.hh"
#include "stramash/isa/page_table.hh"

using namespace stramash;

namespace
{

class PageTableTest : public testing::TestWithParam<IsaType>
{
  protected:
    PageTableTest()
        : nextFrame_(0x100000),
          fmt_(pteFormatFor(GetParam())),
          other_(pteFormatFor(GetParam() == IsaType::X86_64
                                  ? IsaType::AArch64
                                  : IsaType::X86_64))
    {
        pt_ = std::make_unique<PageTable>(
            mem_, fmt_, [this] { return alloc(); },
            [this](Addr a) { freed_.push_back(a); }, &other_);
    }

    Addr
    alloc()
    {
        Addr f = nextFrame_;
        nextFrame_ += pageSize;
        return f;
    }

    GuestMemory mem_;
    Addr nextFrame_;
    const PteFormat &fmt_;
    const PteFormat &other_;
    std::unique_ptr<PageTable> pt_;
    std::vector<Addr> freed_;

    PteAttrs
    rw()
    {
        PteAttrs a;
        a.present = true;
        a.writable = true;
        a.user = true;
        return a;
    }
};

} // namespace

TEST_P(PageTableTest, MapWalkUnmap)
{
    Addr va = 0x7f0012345000;
    Addr pa = alloc();
    EXPECT_FALSE(pt_->walk(va).has_value());
    EXPECT_TRUE(pt_->map(va, pa, rw()));
    auto w = pt_->walk(va);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->pte.frame, pa);
    EXPECT_TRUE(w->pte.attrs.writable);
    EXPECT_EQ(pt_->mappedPages(), 1u);
    EXPECT_TRUE(pt_->unmap(va));
    EXPECT_FALSE(pt_->walk(va).has_value());
    EXPECT_FALSE(pt_->unmap(va));
}

TEST_P(PageTableTest, DoubleMapRejected)
{
    Addr va = 0x1000000;
    EXPECT_TRUE(pt_->map(va, alloc(), rw()));
    EXPECT_FALSE(pt_->map(va, alloc(), rw()));
}

TEST_P(PageTableTest, DistinctVasDistinctEntries)
{
    std::map<Addr, Addr> mappings;
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        Addr va = (rng.next64() & 0x00ffffffffffull) & ~Addr{0xfff};
        if (mappings.count(va))
            continue;
        Addr pa = alloc();
        ASSERT_TRUE(pt_->map(va, pa, rw()));
        mappings[va] = pa;
    }
    for (const auto &[va, pa] : mappings) {
        auto w = pt_->walk(va);
        ASSERT_TRUE(w.has_value()) << std::hex << va;
        ASSERT_EQ(w->pte.frame, pa);
    }
    EXPECT_EQ(pt_->mappedPages(), mappings.size());
}

TEST_P(PageTableTest, ProtectChangesAttrs)
{
    Addr va = 0x2000000;
    ASSERT_TRUE(pt_->map(va, alloc(), rw()));
    PteAttrs ro = rw();
    ro.writable = false;
    EXPECT_TRUE(pt_->protect(va, ro));
    EXPECT_FALSE(pt_->walk(va)->pte.attrs.writable);
    EXPECT_FALSE(pt_->protect(0x999999000, ro));
}

TEST_P(PageTableTest, PresentDepthAndBuildChain)
{
    Addr va = 0x40000000000; // untouched region
    EXPECT_EQ(pt_->presentDepth(va), 1); // only the root
    pt_->buildChain(va);
    EXPECT_EQ(pt_->presentDepth(va), fmt_.levels());
    EXPECT_FALSE(pt_->walk(va).has_value()); // leaf still empty
    // Neighbouring page in the same leaf table also sees the chain.
    EXPECT_EQ(pt_->presentDepth(va + pageSize), fmt_.levels());
    // An address sharing only the upper levels sees partial depth...
    EXPECT_EQ(pt_->presentDepth(va + (Addr{1} << 40)), 2);
    // ...and one in a different top-level slot sees just the root.
    EXPECT_EQ(pt_->presentDepth(va + (Addr{1} << 50)), 1);
}

TEST_P(PageTableTest, TableFramesFreedOnDestruction)
{
    pt_->map(0x123000, alloc(), rw());
    std::size_t frames = pt_->tableFrames();
    EXPECT_GE(frames, 5u); // root + 4 intermediate levels
    pt_.reset();
    EXPECT_EQ(freed_.size(), frames);
}

TEST_P(PageTableTest, ForeignWalkDecodesOtherFormat)
{
    Addr va = 0x7777777000;
    Addr pa = alloc();
    ASSERT_TRUE(pt_->map(va, pa, rw()));

    unsigned touches = 0;
    auto touch = [&](AccessType, Addr) { ++touches; };
    auto w = walkForeign(mem_, fmt_, pt_->rootAddr(), va, touch);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->pte.frame, pa);
    // One charged read per level.
    EXPECT_EQ(touches, static_cast<unsigned>(fmt_.levels()));

    // A miss stops at the absent level.
    touches = 0;
    EXPECT_FALSE(walkForeign(mem_, fmt_, pt_->rootAddr(),
                             va + (Addr{1} << 40), touch)
                     .has_value());
    EXPECT_LT(touches, static_cast<unsigned>(fmt_.levels()));
}

TEST_P(PageTableTest, ForeignDepthMatchesLocal)
{
    Addr va = 0x123456789000;
    pt_->buildChain(va);
    EXPECT_EQ(foreignPresentDepth(mem_, fmt_, pt_->rootAddr(), va,
                                  nullptr),
              pt_->presentDepth(va));
}

TEST_P(PageTableTest, MapForeignRequiresLeafTable)
{
    Addr va = 0x6000000000;
    PteAttrs a = rw();
    // Without the chain the fast path must refuse.
    EXPECT_FALSE(mapForeign(mem_, fmt_, other_, pt_->rootAddr(), va,
                            0x9000, a, true, nullptr));
    pt_->buildChain(va);
    EXPECT_TRUE(mapForeign(mem_, fmt_, other_, pt_->rootAddr(), va,
                           0x9000, a, true, nullptr));
    // Present now, and decodable through the foreign driver.
    auto w = pt_->walk(va);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->pte.frame, 0x9000u);
    // Double insert refused.
    EXPECT_FALSE(mapForeign(mem_, fmt_, other_, pt_->rootAddr(), va,
                            0xa000, a, true, nullptr));
}

TEST_P(PageTableTest, ReconcileForeignRewritesNative)
{
    Addr va = 0x6000000000;
    PteAttrs a = rw();
    a.dirty = true;
    pt_->buildChain(va);
    ASSERT_TRUE(mapForeign(mem_, fmt_, other_, pt_->rootAddr(), va,
                           0x9000, a, true, nullptr));
    // The raw leaf carries the tag before reconciliation.
    auto w = pt_->walk(va);
    std::uint64_t raw = mem_.load<std::uint64_t>(w->pteAddr);
    EXPECT_TRUE(raw & foreignFormatTag);

    EXPECT_TRUE(reconcileForeign(mem_, fmt_, other_, pt_->rootAddr(),
                                 va));
    raw = mem_.load<std::uint64_t>(w->pteAddr);
    EXPECT_FALSE(raw & foreignFormatTag);
    DecodedPte d = fmt_.decode(raw, 0);
    EXPECT_TRUE(d.attrs.present);
    EXPECT_EQ(d.frame, 0x9000u);
    EXPECT_EQ(d.attrs, a);
    // Second reconcile is a no-op.
    EXPECT_FALSE(reconcileForeign(mem_, fmt_, other_, pt_->rootAddr(),
                                  va));
}

TEST_P(PageTableTest, UnmapForeignClearsLeaf)
{
    Addr va = 0x5000000000;
    ASSERT_TRUE(pt_->map(va, alloc(), rw()));
    EXPECT_TRUE(unmapForeign(mem_, fmt_, pt_->rootAddr(), va,
                             nullptr));
    EXPECT_FALSE(pt_->walk(va).has_value());
    EXPECT_FALSE(unmapForeign(mem_, fmt_, pt_->rootAddr(), va,
                              nullptr));
}

TEST_P(PageTableTest, MapForeignInNativeFormat)
{
    Addr va = 0x4000000000;
    pt_->buildChain(va);
    PteAttrs a = rw();
    ASSERT_TRUE(mapForeign(mem_, fmt_, other_, pt_->rootAddr(), va,
                           0xb000, a, false, nullptr));
    auto w = pt_->walk(va);
    ASSERT_TRUE(w.has_value());
    std::uint64_t raw = mem_.load<std::uint64_t>(w->pteAddr);
    EXPECT_FALSE(raw & foreignFormatTag);
    EXPECT_EQ(fmt_.decode(raw, 0).frame, 0xb000u);
}

INSTANTIATE_TEST_SUITE_P(Formats, PageTableTest,
                         testing::Values(IsaType::X86_64,
                                         IsaType::AArch64),
                         [](const auto &info) {
                             return info.param == IsaType::X86_64
                                        ? "x86"
                                        : "arm";
                         });
