#include <gtest/gtest.h>

#include "stramash/isa/regfile.hh"

using namespace stramash;

namespace
{

MigrationState
sampleState()
{
    MigrationState s;
    s.pc = 0x401234;
    s.sp = 0x7ffffff00000;
    s.fp = 0x7ffffff00040;
    s.retVal = 0xdead;
    s.args = {1, 2, 3, 4, 5, 6};
    s.calleeSaved = {11, 12, 13, 14, 15, 16};
    s.pid = 4242;
    return s;
}

} // namespace

TEST(RegFile, X86RoundTrip)
{
    MigrationState s = sampleState();
    s.retVal = 0; // rax carries retVal at a boundary; keep simple
    X86RegFile rf = materializeX86(s);
    EXPECT_EQ(rf.rip, s.pc);
    EXPECT_EQ(rf.rsp, s.sp);
    EXPECT_EQ(rf.rbp, s.fp);
    EXPECT_EQ(rf.rdi, 1u);
    EXPECT_EQ(rf.rsi, 2u);
    MigrationState back = captureX86(rf);
    back.pid = s.pid; // pid travels out of band of the regfile
    // calleeSaved slot 5 is unused in the x86 mapping.
    s.calleeSaved[5] = 0;
    EXPECT_EQ(back, s);
}

TEST(RegFile, ArmRoundTrip)
{
    MigrationState s = sampleState();
    s.retVal = 0;
    ArmRegFile rf = materializeArm(s);
    EXPECT_EQ(rf.pc, s.pc);
    EXPECT_EQ(rf.sp, s.sp);
    EXPECT_EQ(rf.x[29], s.fp);
    EXPECT_EQ(rf.x[0], 1u);
    EXPECT_EQ(rf.x[19], 11u);
    MigrationState back = captureArm(rf);
    back.pid = s.pid;
    // On Arm, x0 is both arg0 and the return register.
    s.retVal = s.args[0];
    EXPECT_EQ(back, s);
}

TEST(RegFile, CrossIsaTransformationPreservesLogicalState)
{
    // The Popcorn-compiler contract: x86 state -> logical -> Arm
    // registers -> logical must preserve pc/sp/fp/args.
    MigrationState s = sampleState();
    s.retVal = s.args[0]; // consistent view at a call boundary
    X86RegFile x = materializeX86(s);
    MigrationState logical = captureX86(x);
    ArmRegFile a = materializeArm(logical);
    MigrationState final = captureArm(a);
    EXPECT_EQ(final.pc, s.pc);
    EXPECT_EQ(final.sp, s.sp);
    EXPECT_EQ(final.fp, s.fp);
    EXPECT_EQ(final.args, s.args);
    EXPECT_EQ(final.calleeSaved[0], s.calleeSaved[0]);
}

TEST(RegFile, SerializeRoundTrip)
{
    MigrationState s = sampleState();
    std::vector<std::uint8_t> wire(migrationStateWireSize());
    serializeMigrationState(s, wire.data());
    MigrationState back = deserializeMigrationState(wire.data());
    EXPECT_EQ(back, s);
}

TEST(RegFile, WireSizeIsStable)
{
    // 17 64-bit words: pc, sp, fp, ret, 6 args, 6 callee-saved, pid.
    EXPECT_EQ(migrationStateWireSize(), 17u * 8);
}

TEST(RegFile, DefaultStatesAreZero)
{
    MigrationState s;
    EXPECT_EQ(s.pc, 0u);
    EXPECT_EQ(s.args[5], 0u);
    X86RegFile x;
    EXPECT_EQ(x.rflags, 0x202u); // IF | reserved bit
    ArmRegFile a;
    EXPECT_EQ(a.nzcv, 0u);
}
