#include <gtest/gtest.h>

#include "stramash/common/rng.hh"
#include "stramash/isa/isa.hh"
#include "stramash/isa/pte_format.hh"

using namespace stramash;

namespace
{

PteAttrs
attrsFromBits(unsigned bits)
{
    PteAttrs a;
    a.present = true;
    a.writable = bits & 1;
    a.user = bits & 2;
    a.executable = bits & 4;
    a.accessed = bits & 8;
    a.dirty = bits & 16;
    return a;
}

} // namespace

class PteFormatBoth : public testing::TestWithParam<IsaType>
{
  protected:
    const PteFormat &fmt() { return pteFormatFor(GetParam()); }
};

TEST_P(PteFormatBoth, LeafRoundTripAllAttrCombos)
{
    for (unsigned bits = 0; bits < 32; ++bits) {
        PteAttrs a = attrsFromBits(bits);
        Addr frame = 0x123456000;
        std::uint64_t raw = fmt().encodeLeaf(frame, a);
        DecodedPte d = fmt().decode(raw, 0);
        EXPECT_TRUE(d.attrs.present);
        EXPECT_EQ(d.attrs, a) << "bits " << bits;
        EXPECT_EQ(d.frame, frame);
        EXPECT_FALSE(d.table);
    }
}

TEST_P(PteFormatBoth, NotPresentEncodesAsAbsent)
{
    PteAttrs a; // present = false
    std::uint64_t raw = fmt().encodeLeaf(0x1000, a);
    EXPECT_FALSE(fmt().decode(raw, 0).attrs.present);
    EXPECT_FALSE(fmt().decode(fmt().encodeEmpty(), 0).attrs.present);
}

TEST_P(PteFormatBoth, TableEntriesDecodeAsTables)
{
    std::uint64_t raw = fmt().encodeTable(0x555000);
    DecodedPte d = fmt().decode(raw, 3);
    EXPECT_TRUE(d.attrs.present);
    EXPECT_TRUE(d.table);
    EXPECT_EQ(d.frame, 0x555000u);
    // At leaf level the table bit is meaningless.
    EXPECT_FALSE(fmt().decode(raw, 0).table);
}

TEST_P(PteFormatBoth, LevelGeometry)
{
    EXPECT_EQ(fmt().levels(), 5);
    for (int l = 0; l < 5; ++l) {
        EXPECT_EQ(fmt().levelShift(l), 12 + 9 * l);
        EXPECT_EQ(fmt().levelBits(l), 9);
    }
    // 57-bit VA decomposition.
    Addr va = 0x0123456789ab000ULL;
    Addr reassembled = 0;
    for (int l = 0; l < 5; ++l)
        reassembled |= fmt().indexOf(va, l) << fmt().levelShift(l);
    EXPECT_EQ(reassembled, va & ~Addr{0xfff});
}

TEST_P(PteFormatBoth, RandomFramesRoundTrip)
{
    Rng rng(77);
    for (int i = 0; i < 1000; ++i) {
        Addr frame = (rng.next64() & 0x0000007ffffff000ULL);
        PteAttrs a = attrsFromBits(rng.below(32));
        DecodedPte d = fmt().decode(fmt().encodeLeaf(frame, a), 0);
        ASSERT_EQ(d.frame, frame);
        ASSERT_EQ(d.attrs, a);
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, PteFormatBoth,
                         testing::Values(IsaType::X86_64,
                                         IsaType::AArch64),
                         [](const auto &info) {
                             return info.param == IsaType::X86_64
                                        ? "x86"
                                        : "arm";
                         });

TEST(PteFormat, EncodingsAreGenuinelyDifferent)
{
    PteAttrs a;
    a.present = true;
    a.writable = true;
    a.user = true;
    a.executable = false;
    Addr frame = 0x7777000;
    auto x = X86PteFormat::instance().encodeLeaf(frame, a);
    auto m = ArmPteFormat::instance().encodeLeaf(frame, a);
    EXPECT_NE(x, m);
    // Cross-decoding gives wrong attribute views: the Arm RO bit
    // (bit 7, inverted sense) vs x86 RW (bit 1, direct sense).
    DecodedPte crossed = ArmPteFormat::instance().decode(x, 0);
    DecodedPte native = X86PteFormat::instance().decode(x, 0);
    EXPECT_EQ(native.attrs, a);
    EXPECT_NE(crossed.attrs, a);
}

TEST(PteFormat, WritableHasInvertedSenseAcrossFormats)
{
    PteAttrs ro;
    ro.present = true;
    ro.writable = false;
    // Read-only on x86: RW bit clear. Read-only on Arm: AP[2] set.
    auto x = X86PteFormat::instance().encodeLeaf(0x1000, ro);
    auto m = ArmPteFormat::instance().encodeLeaf(0x1000, ro);
    EXPECT_EQ(x & 0x2, 0u);       // x86 RW clear
    EXPECT_NE(m & (1ull << 7), 0u); // Arm AP[2] set
}

TEST(PteFormat, ForPicksNativeFormat)
{
    EXPECT_EQ(pteFormatFor(IsaType::X86_64).isa(), IsaType::X86_64);
    EXPECT_EQ(pteFormatFor(IsaType::AArch64).isa(), IsaType::AArch64);
}

TEST(IsaDescriptor, ExpansionAndCas)
{
    const auto &x86 = isaDescriptor(IsaType::X86_64);
    const auto &arm = isaDescriptor(IsaType::AArch64);
    EXPECT_DOUBLE_EQ(x86.instExpansion, 1.0);
    EXPECT_GT(arm.instExpansion, 1.0);
    EXPECT_TRUE(x86.hasCas);
    EXPECT_TRUE(arm.hasCas); // LSE (paper §6.5)
    EXPECT_EQ(x86.pteFormat, &X86PteFormat::instance());
    EXPECT_EQ(arm.pteFormat, &ArmPteFormat::instance());
}

TEST(PteFormatDeath, FrameOutOfRangePanics)
{
    PteAttrs a;
    a.present = true;
    EXPECT_DEATH(X86PteFormat::instance().encodeLeaf(
                     0xfff0000000000000ULL, a),
                 "frame out of range");
}
