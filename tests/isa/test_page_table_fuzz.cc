/**
 * @file
 * Property test: a PageTable driven by random map/unmap/protect
 * sequences must agree with a std::map reference model at every
 * step, for both PTE formats, including cross-format foreign access.
 */

#include <gtest/gtest.h>

#include <map>

#include "stramash/common/rng.hh"
#include "stramash/isa/page_table.hh"

using namespace stramash;

namespace
{

struct RefEntry
{
    Addr pa;
    bool writable;
};

struct FuzzCase
{
    IsaType isa;
    std::uint64_t seed;
};

std::string
fuzzName(const testing::TestParamInfo<FuzzCase> &info)
{
    return std::string(info.param.isa == IsaType::X86_64 ? "x86"
                                                         : "arm") +
           "_s" + std::to_string(info.param.seed);
}

} // namespace

class PageTableFuzz : public testing::TestWithParam<FuzzCase>
{
};

TEST_P(PageTableFuzz, AgreesWithReferenceModel)
{
    const auto &fmt = pteFormatFor(GetParam().isa);
    const auto &other = pteFormatFor(GetParam().isa == IsaType::X86_64
                                         ? IsaType::AArch64
                                         : IsaType::X86_64);
    GuestMemory mem;
    Addr nextFrame = 0x1000000;
    PageTable pt(
        mem, fmt,
        [&] {
            Addr f = nextFrame;
            nextFrame += pageSize;
            return f;
        },
        [](Addr) {}, &other);

    std::map<Addr, RefEntry> ref;
    Rng rng(GetParam().seed);

    // A small VA pool so operations collide frequently, spread over
    // several top-level slots so deep table paths are exercised.
    auto pickVa = [&] {
        Addr slot = rng.below(4);
        Addr page = rng.below(64);
        return (slot << 46) | (page << 12) | (rng.below(2) << 30);
    };

    for (int step = 0; step < 5000; ++step) {
        Addr va = pickVa();
        switch (rng.below(5)) {
          case 0:
          case 1: { // map
            Addr pa = nextFrame;
            nextFrame += pageSize;
            PteAttrs a;
            a.present = true;
            a.user = true;
            a.writable = rng.chance(0.5);
            bool ok = pt.map(va, pa, a);
            bool refOk = ref.emplace(va, RefEntry{pa, a.writable})
                             .second;
            ASSERT_EQ(ok, refOk) << "step " << step;
            break;
          }
          case 2: { // unmap
            ASSERT_EQ(pt.unmap(va), ref.erase(va) != 0)
                << "step " << step;
            break;
          }
          case 3: { // protect flip
            auto it = ref.find(va);
            PteAttrs a;
            a.present = true;
            a.user = true;
            a.writable = rng.chance(0.5);
            bool ok = pt.protect(va, a);
            ASSERT_EQ(ok, it != ref.end()) << "step " << step;
            if (it != ref.end())
                it->second.writable = a.writable;
            break;
          }
          case 4: { // walk, both native and foreign
            auto w = pt.walk(va);
            auto it = ref.find(va);
            ASSERT_EQ(w.has_value(), it != ref.end())
                << "step " << step;
            if (w) {
                ASSERT_EQ(w->pte.frame, it->second.pa);
                ASSERT_EQ(w->pte.attrs.writable,
                          it->second.writable);
                // The remote walker must agree byte-for-byte.
                auto fw = walkForeign(mem, fmt, pt.rootAddr(), va,
                                      nullptr, &other);
                ASSERT_TRUE(fw.has_value());
                ASSERT_EQ(fw->pte.frame, it->second.pa);
                ASSERT_EQ(fw->pteAddr, w->pteAddr);
            }
            break;
          }
        }
    }
    ASSERT_EQ(pt.mappedPages(), ref.size());

    // Final sweep: every reference entry walks correctly.
    for (const auto &[va, e] : ref) {
        auto w = pt.walk(va);
        ASSERT_TRUE(w.has_value());
        ASSERT_EQ(w->pte.frame, e.pa);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PageTableFuzz,
    testing::Values(FuzzCase{IsaType::X86_64, 1},
                    FuzzCase{IsaType::X86_64, 2},
                    FuzzCase{IsaType::AArch64, 3},
                    FuzzCase{IsaType::AArch64, 4},
                    FuzzCase{IsaType::X86_64, 5},
                    FuzzCase{IsaType::AArch64, 6}),
    fuzzName);
