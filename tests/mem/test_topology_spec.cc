/**
 * @file
 * Property tests of the parametric physical-layout generator: every
 * spec produces a non-overlapping, fully classified layout, and the
 * paper-pair spec reduces bit-identically to the historical
 * hard-wired Figure-4 map.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stramash/common/units.hh"
#include "stramash/mem/phys_map.hh"
#include "stramash/mem/topology.hh"

using namespace stramash;

namespace
{

const MemoryModel allModels[] = {MemoryModel::Separated,
                                 MemoryModel::Shared,
                                 MemoryModel::FullyShared};

/** The spec zoo the properties are checked over. */
std::vector<TopologySpec>
specZoo()
{
    std::vector<TopologySpec> specs;
    for (MemoryModel m : allModels) {
        specs.push_back(TopologySpec::paperPair(m));
        for (std::size_t n : {2, 3, 4, 8})
            specs.push_back(TopologySpec::alternating(n, m));
    }
    // Heterogeneous DRAM sizes: one node smaller than the boot strip
    // (all its DRAM becomes boot-local), one much larger.
    TopologySpec lopsided = TopologySpec::alternating(
        3, MemoryModel::Separated);
    lopsided.nodes[0].dramBytes = 1_GiB;
    lopsided.nodes[1].dramBytes = 6_GiB;
    lopsided.nodes[2].dramBytes = 2_GiB;
    specs.push_back(lopsided);
    return specs;
}

} // namespace

TEST(TopologySpec, RegionsAscendingAndNonOverlapping)
{
    for (const TopologySpec &spec : specZoo()) {
        PhysMap map = PhysMap::generate(spec);
        const auto &regions = map.regions();
        ASSERT_FALSE(regions.empty());
        for (std::size_t i = 0; i < regions.size(); ++i) {
            EXPECT_LT(regions[i].range.start, regions[i].range.end);
            if (i + 1 < regions.size()) {
                EXPECT_LE(regions[i].range.end,
                          regions[i + 1].range.start)
                    << "regions " << i << " and " << i + 1
                    << " overlap";
            }
        }
    }
}

TEST(TopologySpec, EveryDramByteFullyClassifiedUnderEveryModel)
{
    for (const TopologySpec &spec : specZoo()) {
        PhysMap map = PhysMap::generate(spec);
        for (const PhysRegion &r : map.regions()) {
            // Probe the first, middle and last line of every region.
            const Addr probes[] = {r.range.start,
                                   r.range.start + r.range.size() / 2,
                                   r.range.end - 1};
            for (Addr a : probes) {
                ASSERT_TRUE(map.isDram(a));
                for (const TopologyNode &n : spec.nodes) {
                    MemoryClass c = map.classify(a, n.id);
                    if (r.sharedPool) {
                        EXPECT_EQ(c, MemoryClass::SharedPool);
                    } else if (spec.memoryModel ==
                               MemoryModel::FullyShared) {
                        EXPECT_EQ(c, MemoryClass::Local);
                    } else {
                        EXPECT_EQ(c, r.homeNode == n.id
                                         ? MemoryClass::Local
                                         : MemoryClass::Remote);
                    }
                }
            }
        }
    }
}

TEST(TopologySpec, HoleBetweenBootStripsAndHighMemoryIsNotDram)
{
    for (const TopologySpec &spec : specZoo()) {
        PhysMap map = PhysMap::generate(spec);
        Addr bootEnd = 0;
        for (const TopologyNode &n : spec.nodes)
            bootEnd += std::min(n.dramBytes, spec.bootStripBytes);
        EXPECT_FALSE(map.isDram(bootEnd));
        EXPECT_FALSE(map.isDram(bootEnd + spec.mmioHoleBytes - 1));
        EXPECT_EQ(map.regionOf(bootEnd), nullptr);
    }
}

TEST(TopologySpec, DramAccountingMatchesTheSpec)
{
    for (const TopologySpec &spec : specZoo()) {
        PhysMap map = PhysMap::generate(spec);
        for (const TopologyNode &n : spec.nodes)
            EXPECT_EQ(map.localBytes(n.id), n.dramBytes)
                << "node " << n.id;
        EXPECT_EQ(map.poolBytes(), spec.poolBytes);
    }
}

TEST(TopologySpec, PaperPairReducesToTheHardWiredLayout)
{
    for (MemoryModel m : allModels) {
        PhysMap gen =
            PhysMap::generate(TopologySpec::paperPair(m));
        PhysMap hard = PhysMap::paperDefault(m);
        ASSERT_EQ(gen.regions().size(), hard.regions().size())
            << "model " << static_cast<int>(m);
        for (std::size_t i = 0; i < gen.regions().size(); ++i) {
            const PhysRegion &a = gen.regions()[i];
            const PhysRegion &b = hard.regions()[i];
            EXPECT_EQ(a.range.start, b.range.start);
            EXPECT_EQ(a.range.end, b.range.end);
            EXPECT_EQ(a.homeNode, b.homeNode);
            EXPECT_EQ(a.sharedPool, b.sharedPool);
        }
    }
}

TEST(TopologySpec, PaperPairIsTheDocumentedEightGigLayout)
{
    PhysMap map =
        PhysMap::generate(TopologySpec::paperPair(MemoryModel::Shared));
    ASSERT_EQ(map.regions().size(), 3u);
    EXPECT_EQ(map.regions()[0].range.start, 0u);
    EXPECT_EQ(map.regions()[0].range.end, Addr{3} * 1_GiB / 2);
    EXPECT_EQ(map.regions()[1].range.end, 3_GiB);
    EXPECT_EQ(map.regions()[2].range.start, 4_GiB);
    EXPECT_EQ(map.regions()[2].range.end, 8_GiB);
    EXPECT_TRUE(map.regions()[2].sharedPool);
}

TEST(TopologySpecDeathTest, ValidationRejectsMalformedSpecs)
{
    TopologySpec sparse = TopologySpec::alternating(
        3, MemoryModel::Separated);
    sparse.nodes[2].id = 5; // not dense
    EXPECT_DEATH(sparse.validate(), "");

    TopologySpec dup = TopologySpec::alternating(
        3, MemoryModel::Separated);
    dup.nodes[2].id = 0; // duplicate
    EXPECT_DEATH(dup.validate(), "");

    TopologySpec poolless =
        TopologySpec::alternating(2, MemoryModel::Shared);
    poolless.poolBytes = 0; // Shared model needs a pool
    EXPECT_DEATH(poolless.validate(), "");

    TopologySpec pooled =
        TopologySpec::alternating(2, MemoryModel::Separated);
    pooled.poolBytes = 1_GiB; // split models must not have one
    EXPECT_DEATH(pooled.validate(), "");

    TopologySpec empty;
    EXPECT_DEATH(empty.validate(), "");
}
