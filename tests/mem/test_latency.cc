#include <gtest/gtest.h>

#include "stramash/mem/latency_profile.hh"

using namespace stramash;

/** Table 2, row by row. */
TEST(LatencyProfile, Table2Values)
{
    const auto &a72 = latencyProfile(CoreModel::CortexA72);
    EXPECT_EQ(a72.l1, 4u);
    EXPECT_EQ(a72.l2, 9u);
    EXPECT_EQ(a72.l3, 0u); // "*": no L3
    EXPECT_EQ(a72.mem, 300u);
    EXPECT_EQ(a72.remoteMem, 780u);

    const auto &tx2 = latencyProfile(CoreModel::ThunderX2);
    EXPECT_EQ(tx2.l1, 4u);
    EXPECT_EQ(tx2.l2, 9u);
    EXPECT_EQ(tx2.l3, 30u);
    EXPECT_EQ(tx2.mem, 300u);
    EXPECT_EQ(tx2.remoteMem, 620u);

    const auto &e5 = latencyProfile(CoreModel::E5_2620);
    EXPECT_EQ(e5.l1, 4u);
    EXPECT_EQ(e5.l2, 12u);
    EXPECT_EQ(e5.l3, 38u);
    EXPECT_EQ(e5.mem, 300u);
    EXPECT_EQ(e5.remoteMem, 640u);

    const auto &gold = latencyProfile(CoreModel::XeonGold);
    EXPECT_EQ(gold.l1, 4u);
    EXPECT_EQ(gold.l2, 14u);
    EXPECT_EQ(gold.l3, 50u);
    EXPECT_EQ(gold.mem, 300u);
    EXPECT_EQ(gold.remoteMem, 640u);
}

TEST(LatencyProfile, RemoteIsAlwaysSlowerThanLocal)
{
    for (auto m : {CoreModel::CortexA72, CoreModel::ThunderX2,
                   CoreModel::E5_2620, CoreModel::XeonGold}) {
        const auto &p = latencyProfile(m);
        EXPECT_GT(p.remoteMem, p.mem) << coreModelName(m);
        EXPECT_GT(p.mem, p.l2) << coreModelName(m);
        EXPECT_GT(p.l2, 0u) << coreModelName(m);
    }
}

TEST(LatencyProfile, LevelLatencyDispatch)
{
    const auto &gold = latencyProfile(CoreModel::XeonGold);
    EXPECT_EQ(gold.levelLatency(1), gold.l1);
    EXPECT_EQ(gold.levelLatency(2), gold.l2);
    EXPECT_EQ(gold.levelLatency(3), gold.l3);
    EXPECT_EQ(gold.levelLatency(4), gold.mem);
}

TEST(LatencyProfile, Names)
{
    EXPECT_STREQ(coreModelName(CoreModel::CortexA72), "Cortex-A72");
    EXPECT_STREQ(coreModelName(CoreModel::XeonGold), "Xeon Gold");
}

TEST(SnoopCosts, Defaults)
{
    SnoopCosts c;
    EXPECT_GT(c.snoopInvalidate, 0u);
    EXPECT_GT(c.snoopData, 0u);
    EXPECT_GT(c.backInvalidate, c.snoopData);
}
