#include <gtest/gtest.h>

#include "stramash/common/units.hh"
#include "stramash/mem/phys_map.hh"

using namespace stramash;

class PhysMapModels : public testing::TestWithParam<MemoryModel>
{
};

TEST_P(PhysMapModels, LowMemorySplitIsCommon)
{
    PhysMap m = PhysMap::paperDefault(GetParam());
    // x86 boot memory starts at 0, Arm at 1.5 GiB (paper Fig. 4).
    auto x86 = m.bootRanges(0);
    auto arm = m.bootRanges(1);
    ASSERT_FALSE(x86.empty());
    ASSERT_FALSE(arm.empty());
    EXPECT_EQ(x86[0].start, 0u);
    EXPECT_EQ(x86[0].end, 1_GiB + 512_MiB);
    EXPECT_EQ(arm[0].start, 1_GiB + 512_MiB);
    EXPECT_EQ(arm[0].end, 3_GiB);
}

TEST_P(PhysMapModels, MmioHoleIsUnmapped)
{
    PhysMap m = PhysMap::paperDefault(GetParam());
    EXPECT_FALSE(m.isDram(3_GiB));
    EXPECT_FALSE(m.isDram(4_GiB - 1));
    EXPECT_TRUE(m.isDram(0));
    EXPECT_TRUE(m.isDram(4_GiB));
    EXPECT_TRUE(m.isDram(8_GiB - 1));
    EXPECT_FALSE(m.isDram(8_GiB));
}

INSTANTIATE_TEST_SUITE_P(AllModels, PhysMapModels,
                         testing::Values(MemoryModel::Separated,
                                         MemoryModel::Shared,
                                         MemoryModel::FullyShared),
                         [](const auto &info) {
                             return memoryModelName(info.param);
                         });

TEST(PhysMap, SeparatedClassification)
{
    PhysMap m = PhysMap::paperDefault(MemoryModel::Separated);
    // x86 accessing its own memory: local; Arm's: remote.
    EXPECT_EQ(m.classify(0x1000, 0), MemoryClass::Local);
    EXPECT_EQ(m.classify(0x1000, 1), MemoryClass::Remote);
    EXPECT_EQ(m.classify(2_GiB, 0), MemoryClass::Remote);
    EXPECT_EQ(m.classify(2_GiB, 1), MemoryClass::Local);
    // High ranges are split per §8.1.
    EXPECT_EQ(m.classify(5_GiB, 0), MemoryClass::Local);
    EXPECT_EQ(m.classify(5_GiB, 1), MemoryClass::Remote);
    EXPECT_EQ(m.classify(7_GiB, 0), MemoryClass::Remote);
    EXPECT_EQ(m.classify(7_GiB, 1), MemoryClass::Local);
    EXPECT_EQ(m.poolBytes(), 0u);
}

TEST(PhysMap, SharedClassification)
{
    PhysMap m = PhysMap::paperDefault(MemoryModel::Shared);
    // [4 GiB, 8 GiB) is the CXL pool: remote-ish for both.
    EXPECT_EQ(m.classify(5_GiB, 0), MemoryClass::SharedPool);
    EXPECT_EQ(m.classify(5_GiB, 1), MemoryClass::SharedPool);
    EXPECT_EQ(m.poolBytes(), 4_GiB);
    ASSERT_EQ(m.poolRanges().size(), 1u);
    EXPECT_EQ(m.poolRanges()[0].start, 4_GiB);
    // Private memory classification is unchanged.
    EXPECT_EQ(m.classify(0x1000, 0), MemoryClass::Local);
    EXPECT_EQ(m.classify(0x1000, 1), MemoryClass::Remote);
}

TEST(PhysMap, FullySharedIsAlwaysLocal)
{
    PhysMap m = PhysMap::paperDefault(MemoryModel::FullyShared);
    for (Addr a : {Addr{0}, 2_GiB, 5_GiB, 7_GiB}) {
        EXPECT_EQ(m.classify(a, 0), MemoryClass::Local);
        EXPECT_EQ(m.classify(a, 1), MemoryClass::Local);
    }
}

TEST(PhysMap, LocalBytesAccounting)
{
    PhysMap sep = PhysMap::paperDefault(MemoryModel::Separated);
    EXPECT_EQ(sep.localBytes(0), 1_GiB + 512_MiB + 2_GiB);
    EXPECT_EQ(sep.localBytes(1), 1_GiB + 512_MiB + 2_GiB);
    PhysMap sh = PhysMap::paperDefault(MemoryModel::Shared);
    EXPECT_EQ(sh.localBytes(0), 1_GiB + 512_MiB);
    EXPECT_EQ(sh.localBytes(1), 1_GiB + 512_MiB);
}

TEST(PhysMap, RegionOf)
{
    PhysMap m = PhysMap::paperDefault(MemoryModel::Shared);
    const PhysRegion *r = m.regionOf(5_GiB);
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->sharedPool);
    EXPECT_EQ(m.regionOf(3_GiB + 5), nullptr);
}

TEST(PhysMapDeath, UnmappedAccessPanics)
{
    PhysMap m = PhysMap::paperDefault(MemoryModel::Separated);
    EXPECT_DEATH(m.classify(3_GiB, 0), "unmapped");
}

TEST(PhysMapDeath, OverlappingRegionsPanic)
{
    std::vector<PhysRegion> regions{
        {{0, 0x2000}, 0, false},
        {{0x1000, 0x3000}, 1, false},
    };
    EXPECT_DEATH(PhysMap(MemoryModel::Separated, std::move(regions)),
                 "overlapping");
}
