#include <gtest/gtest.h>

#include "stramash/mem/guest_memory.hh"

using namespace stramash;

TEST(GuestMemory, UntouchedReadsZero)
{
    GuestMemory mem;
    EXPECT_EQ(mem.load<std::uint64_t>(0x12345678), 0u);
    std::uint8_t buf[16];
    mem.read(0xdeadbeef000, buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.frameCount(), 0u);
}

TEST(GuestMemory, TypedRoundTrip)
{
    GuestMemory mem;
    mem.store<std::uint32_t>(0x1000, 0xabcd1234);
    mem.store<double>(0x2000, 3.25);
    EXPECT_EQ(mem.load<std::uint32_t>(0x1000), 0xabcd1234u);
    EXPECT_DOUBLE_EQ(mem.load<double>(0x2000), 3.25);
    EXPECT_EQ(mem.frameCount(), 2u);
}

TEST(GuestMemory, CrossPageReadWrite)
{
    GuestMemory mem;
    std::vector<std::uint8_t> data(3 * pageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    Addr base = 5 * pageSize - 100; // straddles boundaries
    mem.write(base, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    mem.read(base, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(GuestMemory, CrossPageTypedValue)
{
    GuestMemory mem;
    Addr straddle = pageSize - 4;
    mem.store<std::uint64_t>(straddle, 0x1122334455667788ULL);
    EXPECT_EQ(mem.load<std::uint64_t>(straddle),
              0x1122334455667788ULL);
}

TEST(GuestMemory, ZeroRange)
{
    GuestMemory mem;
    mem.store<std::uint64_t>(0x1000, ~0ull);
    mem.store<std::uint64_t>(0x1ff8, ~0ull);
    mem.store<std::uint64_t>(0x2000, ~0ull);
    mem.zero(0x1000, pageSize);
    EXPECT_EQ(mem.load<std::uint64_t>(0x1000), 0u);
    EXPECT_EQ(mem.load<std::uint64_t>(0x1ff8), 0u);
    EXPECT_EQ(mem.load<std::uint64_t>(0x2000), ~0ull);
}

TEST(GuestMemory, CopyGuestToGuest)
{
    GuestMemory mem;
    std::vector<std::uint8_t> data(pageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    mem.write(0x10000, data.data(), data.size());
    mem.copy(0x50000, 0x10000, pageSize);
    std::vector<std::uint8_t> back(pageSize);
    mem.read(0x50000, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(GuestMemory, OverlappingWritesLastWins)
{
    GuestMemory mem;
    mem.store<std::uint32_t>(0x100, 0x11111111);
    mem.store<std::uint16_t>(0x102, 0x2222);
    EXPECT_EQ(mem.load<std::uint32_t>(0x100), 0x22221111u);
}

TEST(GuestMemory, SparsenessAtScale)
{
    GuestMemory mem;
    // Touch one byte every 64 MiB over an 8 GiB span: 128 frames.
    for (Addr a = 0; a < (Addr{8} << 30); a += Addr{64} << 20)
        mem.store<std::uint8_t>(a, 1);
    EXPECT_EQ(mem.frameCount(), 128u);
}
