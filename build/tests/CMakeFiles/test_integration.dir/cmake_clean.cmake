file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_cross_design.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_cross_design.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_futex_semantics.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_futex_semantics.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_migration_consistency.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_migration_consistency.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_process_migration.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_process_migration.cc.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
