file(REMOVE_RECURSE
  "CMakeFiles/test_dsm.dir/dsm/test_dsm_engine.cc.o"
  "CMakeFiles/test_dsm.dir/dsm/test_dsm_engine.cc.o.d"
  "CMakeFiles/test_dsm.dir/dsm/test_popcorn.cc.o"
  "CMakeFiles/test_dsm.dir/dsm/test_popcorn.cc.o.d"
  "CMakeFiles/test_dsm.dir/dsm/test_writeback_interplay.cc.o"
  "CMakeFiles/test_dsm.dir/dsm/test_writeback_interplay.cc.o.d"
  "test_dsm"
  "test_dsm.pdb"
  "test_dsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
