file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/isa/test_page_table.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_page_table.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_page_table_fuzz.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_page_table_fuzz.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_pte_format.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_pte_format.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_regfile.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_regfile.cc.o.d"
  "test_isa"
  "test_isa.pdb"
  "test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
