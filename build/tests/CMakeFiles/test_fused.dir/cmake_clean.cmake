file(REMOVE_RECURSE
  "CMakeFiles/test_fused.dir/fused/test_fused_vas.cc.o"
  "CMakeFiles/test_fused.dir/fused/test_fused_vas.cc.o.d"
  "CMakeFiles/test_fused.dir/fused/test_global_alloc.cc.o"
  "CMakeFiles/test_fused.dir/fused/test_global_alloc.cc.o.d"
  "CMakeFiles/test_fused.dir/fused/test_packing.cc.o"
  "CMakeFiles/test_fused.dir/fused/test_packing.cc.o.d"
  "CMakeFiles/test_fused.dir/fused/test_stramash.cc.o"
  "CMakeFiles/test_fused.dir/fused/test_stramash.cc.o.d"
  "test_fused"
  "test_fused.pdb"
  "test_fused[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
