file(REMOVE_RECURSE
  "CMakeFiles/test_msg.dir/msg/test_ring_buffer.cc.o"
  "CMakeFiles/test_msg.dir/msg/test_ring_buffer.cc.o.d"
  "CMakeFiles/test_msg.dir/msg/test_transport.cc.o"
  "CMakeFiles/test_msg.dir/msg/test_transport.cc.o.d"
  "test_msg"
  "test_msg.pdb"
  "test_msg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
