
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/test_guest_memory.cc" "tests/CMakeFiles/test_mem.dir/mem/test_guest_memory.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_guest_memory.cc.o.d"
  "/root/repo/tests/mem/test_latency.cc" "tests/CMakeFiles/test_mem.dir/mem/test_latency.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_latency.cc.o.d"
  "/root/repo/tests/mem/test_phys_map.cc" "tests/CMakeFiles/test_mem.dir/mem/test_phys_map.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_phys_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stramash/workloads/CMakeFiles/stramash_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/core/CMakeFiles/stramash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/fused/CMakeFiles/stramash_fused.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/dsm/CMakeFiles/stramash_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/kernel/CMakeFiles/stramash_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/msg/CMakeFiles/stramash_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/sim/CMakeFiles/stramash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/isa/CMakeFiles/stramash_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/cache/CMakeFiles/stramash_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/mem/CMakeFiles/stramash_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/common/CMakeFiles/stramash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
