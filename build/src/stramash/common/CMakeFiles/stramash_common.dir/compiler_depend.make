# Empty compiler generated dependencies file for stramash_common.
# This may be replaced when dependencies are built.
