file(REMOVE_RECURSE
  "libstramash_common.a"
)
