file(REMOVE_RECURSE
  "CMakeFiles/stramash_common.dir/logging.cc.o"
  "CMakeFiles/stramash_common.dir/logging.cc.o.d"
  "CMakeFiles/stramash_common.dir/stats.cc.o"
  "CMakeFiles/stramash_common.dir/stats.cc.o.d"
  "CMakeFiles/stramash_common.dir/types.cc.o"
  "CMakeFiles/stramash_common.dir/types.cc.o.d"
  "libstramash_common.a"
  "libstramash_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
