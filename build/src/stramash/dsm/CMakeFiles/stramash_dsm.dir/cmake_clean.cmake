file(REMOVE_RECURSE
  "CMakeFiles/stramash_dsm.dir/dsm_engine.cc.o"
  "CMakeFiles/stramash_dsm.dir/dsm_engine.cc.o.d"
  "CMakeFiles/stramash_dsm.dir/popcorn.cc.o"
  "CMakeFiles/stramash_dsm.dir/popcorn.cc.o.d"
  "libstramash_dsm.a"
  "libstramash_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
