# Empty dependencies file for stramash_dsm.
# This may be replaced when dependencies are built.
