file(REMOVE_RECURSE
  "libstramash_dsm.a"
)
