# CMake generated Testfile for 
# Source directory: /root/repo/src/stramash
# Build directory: /root/repo/build/src/stramash
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("rbtree")
subdirs("mem")
subdirs("cache")
subdirs("isa")
subdirs("sim")
subdirs("msg")
subdirs("kernel")
subdirs("dsm")
subdirs("fused")
subdirs("core")
subdirs("workloads")
