file(REMOVE_RECURSE
  "libstramash_mem.a"
)
