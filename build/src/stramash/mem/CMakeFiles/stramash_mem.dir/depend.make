# Empty dependencies file for stramash_mem.
# This may be replaced when dependencies are built.
