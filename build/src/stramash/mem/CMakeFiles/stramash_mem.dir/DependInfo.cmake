
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stramash/mem/latency_profile.cc" "src/stramash/mem/CMakeFiles/stramash_mem.dir/latency_profile.cc.o" "gcc" "src/stramash/mem/CMakeFiles/stramash_mem.dir/latency_profile.cc.o.d"
  "/root/repo/src/stramash/mem/phys_map.cc" "src/stramash/mem/CMakeFiles/stramash_mem.dir/phys_map.cc.o" "gcc" "src/stramash/mem/CMakeFiles/stramash_mem.dir/phys_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stramash/common/CMakeFiles/stramash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
