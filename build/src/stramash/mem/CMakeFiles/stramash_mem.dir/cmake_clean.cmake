file(REMOVE_RECURSE
  "CMakeFiles/stramash_mem.dir/latency_profile.cc.o"
  "CMakeFiles/stramash_mem.dir/latency_profile.cc.o.d"
  "CMakeFiles/stramash_mem.dir/phys_map.cc.o"
  "CMakeFiles/stramash_mem.dir/phys_map.cc.o.d"
  "libstramash_mem.a"
  "libstramash_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
