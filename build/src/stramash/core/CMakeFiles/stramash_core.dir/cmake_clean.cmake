file(REMOVE_RECURSE
  "CMakeFiles/stramash_core.dir/ae_report.cc.o"
  "CMakeFiles/stramash_core.dir/ae_report.cc.o.d"
  "CMakeFiles/stramash_core.dir/app.cc.o"
  "CMakeFiles/stramash_core.dir/app.cc.o.d"
  "CMakeFiles/stramash_core.dir/system.cc.o"
  "CMakeFiles/stramash_core.dir/system.cc.o.d"
  "libstramash_core.a"
  "libstramash_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
