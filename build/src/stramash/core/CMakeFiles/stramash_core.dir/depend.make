# Empty dependencies file for stramash_core.
# This may be replaced when dependencies are built.
