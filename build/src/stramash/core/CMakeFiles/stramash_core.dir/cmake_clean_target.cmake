file(REMOVE_RECURSE
  "libstramash_core.a"
)
