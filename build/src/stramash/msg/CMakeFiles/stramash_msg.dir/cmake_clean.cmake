file(REMOVE_RECURSE
  "CMakeFiles/stramash_msg.dir/ring_buffer.cc.o"
  "CMakeFiles/stramash_msg.dir/ring_buffer.cc.o.d"
  "CMakeFiles/stramash_msg.dir/transport.cc.o"
  "CMakeFiles/stramash_msg.dir/transport.cc.o.d"
  "libstramash_msg.a"
  "libstramash_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
