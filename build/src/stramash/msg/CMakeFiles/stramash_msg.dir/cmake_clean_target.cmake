file(REMOVE_RECURSE
  "libstramash_msg.a"
)
