# Empty compiler generated dependencies file for stramash_msg.
# This may be replaced when dependencies are built.
