
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stramash/msg/ring_buffer.cc" "src/stramash/msg/CMakeFiles/stramash_msg.dir/ring_buffer.cc.o" "gcc" "src/stramash/msg/CMakeFiles/stramash_msg.dir/ring_buffer.cc.o.d"
  "/root/repo/src/stramash/msg/transport.cc" "src/stramash/msg/CMakeFiles/stramash_msg.dir/transport.cc.o" "gcc" "src/stramash/msg/CMakeFiles/stramash_msg.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stramash/common/CMakeFiles/stramash_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/sim/CMakeFiles/stramash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/cache/CMakeFiles/stramash_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/isa/CMakeFiles/stramash_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/mem/CMakeFiles/stramash_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
