file(REMOVE_RECURSE
  "CMakeFiles/stramash_kernel.dir/address_space.cc.o"
  "CMakeFiles/stramash_kernel.dir/address_space.cc.o.d"
  "CMakeFiles/stramash_kernel.dir/kernel.cc.o"
  "CMakeFiles/stramash_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/stramash_kernel.dir/phys_alloc.cc.o"
  "CMakeFiles/stramash_kernel.dir/phys_alloc.cc.o.d"
  "CMakeFiles/stramash_kernel.dir/vma.cc.o"
  "CMakeFiles/stramash_kernel.dir/vma.cc.o.d"
  "libstramash_kernel.a"
  "libstramash_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
