file(REMOVE_RECURSE
  "libstramash_kernel.a"
)
