# Empty compiler generated dependencies file for stramash_kernel.
# This may be replaced when dependencies are built.
