# Empty dependencies file for stramash_workloads.
# This may be replaced when dependencies are built.
