file(REMOVE_RECURSE
  "libstramash_workloads.a"
)
