file(REMOVE_RECURSE
  "CMakeFiles/stramash_workloads.dir/kvstore.cc.o"
  "CMakeFiles/stramash_workloads.dir/kvstore.cc.o.d"
  "CMakeFiles/stramash_workloads.dir/microbench.cc.o"
  "CMakeFiles/stramash_workloads.dir/microbench.cc.o.d"
  "CMakeFiles/stramash_workloads.dir/npb.cc.o"
  "CMakeFiles/stramash_workloads.dir/npb.cc.o.d"
  "libstramash_workloads.a"
  "libstramash_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
