
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stramash/sim/baremetal_ref.cc" "src/stramash/sim/CMakeFiles/stramash_sim.dir/baremetal_ref.cc.o" "gcc" "src/stramash/sim/CMakeFiles/stramash_sim.dir/baremetal_ref.cc.o.d"
  "/root/repo/src/stramash/sim/ipi_topology.cc" "src/stramash/sim/CMakeFiles/stramash_sim.dir/ipi_topology.cc.o" "gcc" "src/stramash/sim/CMakeFiles/stramash_sim.dir/ipi_topology.cc.o.d"
  "/root/repo/src/stramash/sim/machine.cc" "src/stramash/sim/CMakeFiles/stramash_sim.dir/machine.cc.o" "gcc" "src/stramash/sim/CMakeFiles/stramash_sim.dir/machine.cc.o.d"
  "/root/repo/src/stramash/sim/mmio.cc" "src/stramash/sim/CMakeFiles/stramash_sim.dir/mmio.cc.o" "gcc" "src/stramash/sim/CMakeFiles/stramash_sim.dir/mmio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stramash/cache/CMakeFiles/stramash_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/common/CMakeFiles/stramash_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/isa/CMakeFiles/stramash_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/mem/CMakeFiles/stramash_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
