file(REMOVE_RECURSE
  "CMakeFiles/stramash_sim.dir/baremetal_ref.cc.o"
  "CMakeFiles/stramash_sim.dir/baremetal_ref.cc.o.d"
  "CMakeFiles/stramash_sim.dir/ipi_topology.cc.o"
  "CMakeFiles/stramash_sim.dir/ipi_topology.cc.o.d"
  "CMakeFiles/stramash_sim.dir/machine.cc.o"
  "CMakeFiles/stramash_sim.dir/machine.cc.o.d"
  "CMakeFiles/stramash_sim.dir/mmio.cc.o"
  "CMakeFiles/stramash_sim.dir/mmio.cc.o.d"
  "libstramash_sim.a"
  "libstramash_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
