file(REMOVE_RECURSE
  "libstramash_sim.a"
)
