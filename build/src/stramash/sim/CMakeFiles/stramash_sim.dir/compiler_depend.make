# Empty compiler generated dependencies file for stramash_sim.
# This may be replaced when dependencies are built.
