file(REMOVE_RECURSE
  "libstramash_isa.a"
)
