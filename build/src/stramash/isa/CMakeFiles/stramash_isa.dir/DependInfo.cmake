
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stramash/isa/isa.cc" "src/stramash/isa/CMakeFiles/stramash_isa.dir/isa.cc.o" "gcc" "src/stramash/isa/CMakeFiles/stramash_isa.dir/isa.cc.o.d"
  "/root/repo/src/stramash/isa/page_table.cc" "src/stramash/isa/CMakeFiles/stramash_isa.dir/page_table.cc.o" "gcc" "src/stramash/isa/CMakeFiles/stramash_isa.dir/page_table.cc.o.d"
  "/root/repo/src/stramash/isa/pte_format.cc" "src/stramash/isa/CMakeFiles/stramash_isa.dir/pte_format.cc.o" "gcc" "src/stramash/isa/CMakeFiles/stramash_isa.dir/pte_format.cc.o.d"
  "/root/repo/src/stramash/isa/regfile.cc" "src/stramash/isa/CMakeFiles/stramash_isa.dir/regfile.cc.o" "gcc" "src/stramash/isa/CMakeFiles/stramash_isa.dir/regfile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stramash/common/CMakeFiles/stramash_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/mem/CMakeFiles/stramash_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
