file(REMOVE_RECURSE
  "CMakeFiles/stramash_isa.dir/isa.cc.o"
  "CMakeFiles/stramash_isa.dir/isa.cc.o.d"
  "CMakeFiles/stramash_isa.dir/page_table.cc.o"
  "CMakeFiles/stramash_isa.dir/page_table.cc.o.d"
  "CMakeFiles/stramash_isa.dir/pte_format.cc.o"
  "CMakeFiles/stramash_isa.dir/pte_format.cc.o.d"
  "CMakeFiles/stramash_isa.dir/regfile.cc.o"
  "CMakeFiles/stramash_isa.dir/regfile.cc.o.d"
  "libstramash_isa.a"
  "libstramash_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
