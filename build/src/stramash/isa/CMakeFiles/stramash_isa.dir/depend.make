# Empty dependencies file for stramash_isa.
# This may be replaced when dependencies are built.
