# Empty compiler generated dependencies file for stramash_cache.
# This may be replaced when dependencies are built.
