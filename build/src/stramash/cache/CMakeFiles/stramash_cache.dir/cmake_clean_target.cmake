file(REMOVE_RECURSE
  "libstramash_cache.a"
)
