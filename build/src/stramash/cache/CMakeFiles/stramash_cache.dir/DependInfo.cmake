
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stramash/cache/cache.cc" "src/stramash/cache/CMakeFiles/stramash_cache.dir/cache.cc.o" "gcc" "src/stramash/cache/CMakeFiles/stramash_cache.dir/cache.cc.o.d"
  "/root/repo/src/stramash/cache/coherence.cc" "src/stramash/cache/CMakeFiles/stramash_cache.dir/coherence.cc.o" "gcc" "src/stramash/cache/CMakeFiles/stramash_cache.dir/coherence.cc.o.d"
  "/root/repo/src/stramash/cache/hierarchy.cc" "src/stramash/cache/CMakeFiles/stramash_cache.dir/hierarchy.cc.o" "gcc" "src/stramash/cache/CMakeFiles/stramash_cache.dir/hierarchy.cc.o.d"
  "/root/repo/src/stramash/cache/ruby_ref.cc" "src/stramash/cache/CMakeFiles/stramash_cache.dir/ruby_ref.cc.o" "gcc" "src/stramash/cache/CMakeFiles/stramash_cache.dir/ruby_ref.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stramash/common/CMakeFiles/stramash_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/mem/CMakeFiles/stramash_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
