file(REMOVE_RECURSE
  "CMakeFiles/stramash_cache.dir/cache.cc.o"
  "CMakeFiles/stramash_cache.dir/cache.cc.o.d"
  "CMakeFiles/stramash_cache.dir/coherence.cc.o"
  "CMakeFiles/stramash_cache.dir/coherence.cc.o.d"
  "CMakeFiles/stramash_cache.dir/hierarchy.cc.o"
  "CMakeFiles/stramash_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/stramash_cache.dir/ruby_ref.cc.o"
  "CMakeFiles/stramash_cache.dir/ruby_ref.cc.o.d"
  "libstramash_cache.a"
  "libstramash_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
