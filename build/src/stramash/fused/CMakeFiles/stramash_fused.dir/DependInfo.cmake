
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stramash/fused/global_alloc.cc" "src/stramash/fused/CMakeFiles/stramash_fused.dir/global_alloc.cc.o" "gcc" "src/stramash/fused/CMakeFiles/stramash_fused.dir/global_alloc.cc.o.d"
  "/root/repo/src/stramash/fused/packing.cc" "src/stramash/fused/CMakeFiles/stramash_fused.dir/packing.cc.o" "gcc" "src/stramash/fused/CMakeFiles/stramash_fused.dir/packing.cc.o.d"
  "/root/repo/src/stramash/fused/stramash.cc" "src/stramash/fused/CMakeFiles/stramash_fused.dir/stramash.cc.o" "gcc" "src/stramash/fused/CMakeFiles/stramash_fused.dir/stramash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stramash/dsm/CMakeFiles/stramash_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/kernel/CMakeFiles/stramash_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/msg/CMakeFiles/stramash_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/sim/CMakeFiles/stramash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/isa/CMakeFiles/stramash_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/cache/CMakeFiles/stramash_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/mem/CMakeFiles/stramash_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/common/CMakeFiles/stramash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
