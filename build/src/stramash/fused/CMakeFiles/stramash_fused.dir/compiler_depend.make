# Empty compiler generated dependencies file for stramash_fused.
# This may be replaced when dependencies are built.
