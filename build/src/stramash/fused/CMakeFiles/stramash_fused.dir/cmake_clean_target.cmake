file(REMOVE_RECURSE
  "libstramash_fused.a"
)
