file(REMOVE_RECURSE
  "CMakeFiles/stramash_fused.dir/global_alloc.cc.o"
  "CMakeFiles/stramash_fused.dir/global_alloc.cc.o.d"
  "CMakeFiles/stramash_fused.dir/packing.cc.o"
  "CMakeFiles/stramash_fused.dir/packing.cc.o.d"
  "CMakeFiles/stramash_fused.dir/stramash.cc.o"
  "CMakeFiles/stramash_fused.dir/stramash.cc.o.d"
  "libstramash_fused.a"
  "libstramash_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stramash_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
