file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_messages.dir/bench_table3_messages.cc.o"
  "CMakeFiles/bench_table3_messages.dir/bench_table3_messages.cc.o.d"
  "bench_table3_messages"
  "bench_table3_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
