# Empty compiler generated dependencies file for bench_table3_messages.
# This may be replaced when dependencies are built.
