file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_icount.dir/bench_fig7_icount.cc.o"
  "CMakeFiles/bench_fig7_icount.dir/bench_fig7_icount.cc.o.d"
  "bench_fig7_icount"
  "bench_fig7_icount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_icount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
