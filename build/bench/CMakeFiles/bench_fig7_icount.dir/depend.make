# Empty dependencies file for bench_fig7_icount.
# This may be replaced when dependencies are built.
