# Empty dependencies file for bench_fig12_granularity.
# This may be replaced when dependencies are built.
