file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_memaccess.dir/bench_fig11_memaccess.cc.o"
  "CMakeFiles/bench_fig11_memaccess.dir/bench_fig11_memaccess.cc.o.d"
  "bench_fig11_memaccess"
  "bench_fig11_memaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_memaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
