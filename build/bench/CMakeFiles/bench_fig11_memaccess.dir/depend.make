# Empty dependencies file for bench_fig11_memaccess.
# This may be replaced when dependencies are built.
