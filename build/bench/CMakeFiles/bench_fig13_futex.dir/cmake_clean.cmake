file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_futex.dir/bench_fig13_futex.cc.o"
  "CMakeFiles/bench_fig13_futex.dir/bench_fig13_futex.cc.o.d"
  "bench_fig13_futex"
  "bench_fig13_futex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_futex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
