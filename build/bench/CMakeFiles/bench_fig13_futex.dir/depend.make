# Empty dependencies file for bench_fig13_futex.
# This may be replaced when dependencies are built.
