file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fig6_ipi.dir/bench_fig5_fig6_ipi.cc.o"
  "CMakeFiles/bench_fig5_fig6_ipi.dir/bench_fig5_fig6_ipi.cc.o.d"
  "bench_fig5_fig6_ipi"
  "bench_fig5_fig6_ipi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fig6_ipi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
