# Empty compiler generated dependencies file for bench_fig14_kvstore.
# This may be replaced when dependencies are built.
