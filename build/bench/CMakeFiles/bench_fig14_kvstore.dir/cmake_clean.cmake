file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_kvstore.dir/bench_fig14_kvstore.cc.o"
  "CMakeFiles/bench_fig14_kvstore.dir/bench_fig14_kvstore.cc.o.d"
  "bench_fig14_kvstore"
  "bench_fig14_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
