file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_allocator.dir/bench_table4_allocator.cc.o"
  "CMakeFiles/bench_table4_allocator.dir/bench_table4_allocator.cc.o.d"
  "bench_table4_allocator"
  "bench_table4_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
