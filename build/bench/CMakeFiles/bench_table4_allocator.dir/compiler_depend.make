# Empty compiler generated dependencies file for bench_table4_allocator.
# This may be replaced when dependencies are built.
