
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_npb.cc" "bench/CMakeFiles/bench_fig9_npb.dir/bench_fig9_npb.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_npb.dir/bench_fig9_npb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/workloads/CMakeFiles/stramash_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/core/CMakeFiles/stramash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/fused/CMakeFiles/stramash_fused.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/dsm/CMakeFiles/stramash_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/kernel/CMakeFiles/stramash_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/msg/CMakeFiles/stramash_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/sim/CMakeFiles/stramash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/isa/CMakeFiles/stramash_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/cache/CMakeFiles/stramash_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/mem/CMakeFiles/stramash_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stramash/common/CMakeFiles/stramash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
