file(REMOVE_RECURSE
  "CMakeFiles/memory_models.dir/memory_models.cpp.o"
  "CMakeFiles/memory_models.dir/memory_models.cpp.o.d"
  "memory_models"
  "memory_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
