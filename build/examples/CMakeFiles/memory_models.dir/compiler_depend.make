# Empty compiler generated dependencies file for memory_models.
# This may be replaced when dependencies are built.
