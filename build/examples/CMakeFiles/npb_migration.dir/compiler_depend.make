# Empty compiler generated dependencies file for npb_migration.
# This may be replaced when dependencies are built.
