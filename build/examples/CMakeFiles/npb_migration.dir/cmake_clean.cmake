file(REMOVE_RECURSE
  "CMakeFiles/npb_migration.dir/npb_migration.cpp.o"
  "CMakeFiles/npb_migration.dir/npb_migration.cpp.o.d"
  "npb_migration"
  "npb_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npb_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
