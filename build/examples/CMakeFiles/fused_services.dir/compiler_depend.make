# Empty compiler generated dependencies file for fused_services.
# This may be replaced when dependencies are built.
