file(REMOVE_RECURSE
  "CMakeFiles/fused_services.dir/fused_services.cpp.o"
  "CMakeFiles/fused_services.dir/fused_services.cpp.o.d"
  "fused_services"
  "fused_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fused_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
