file(REMOVE_RECURSE
  "CMakeFiles/ae_report.dir/ae_report.cpp.o"
  "CMakeFiles/ae_report.dir/ae_report.cpp.o.d"
  "ae_report"
  "ae_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ae_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
