# Empty compiler generated dependencies file for ae_report.
# This may be replaced when dependencies are built.
