#!/usr/bin/env python3
"""Compare a bench JSON against its checked-in baseline.

Every metric emitted by the throughput bench (accesses/sec and
speedup ratios) is higher-is-better; a current value more than
--tolerance below the baseline fails the check. The default 30%
margin absorbs hosted-runner variance — the bench itself measures
process CPU time and keeps the best of three repetitions, so what
is left to absorb is mostly hardware-generation spread.

Exit status: 0 all metrics within tolerance, 1 regression or a
metric missing from the current run, 2 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {k: v for k, v in data.items() if isinstance(v, (int, float))}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("current", help="freshly produced bench JSON")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression (default 0.30 = 30%%)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if not base:
        print(f"error: no numeric metrics in {args.baseline}",
              file=sys.stderr)
        return 2

    failures = 0
    width = max(len(k) for k in base)
    for key in sorted(base):
        want = base[key]
        got = cur.get(key)
        if got is None:
            print(f"FAIL {key:<{width}}  missing from current run")
            failures += 1
            continue
        floor = want * (1.0 - args.tolerance)
        change = (got - want) / want if want else 0.0
        verdict = "ok  " if got >= floor else "FAIL"
        print(f"{verdict} {key:<{width}}  baseline {want:>12.4g}"
              f"  current {got:>12.4g}  ({change:+.1%})")
        if got < floor:
            failures += 1

    extra = sorted(set(cur) - set(base))
    for key in extra:
        print(f"note {key}: not in baseline (new metric?)")

    if failures:
        print(f"\n{failures} metric(s) regressed beyond "
              f"{args.tolerance:.0%} of baseline")
        return 1
    print(f"\nall {len(base)} metrics within {args.tolerance:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
