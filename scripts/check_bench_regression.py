#!/usr/bin/env python3
"""Compare a bench JSON against its checked-in baseline.

Every metric emitted by the throughput bench (accesses/sec and
speedup ratios) is higher-is-better; a current value more than
--tolerance below the baseline fails the check. The default 30%
margin absorbs hosted-runner variance — the bench itself measures
process CPU time and keeps the best of three repetitions, so what
is left to absorb is mostly hardware-generation spread.

A metric present in the baseline but absent from the current run is
a failure in its own right (a silently dropped stat is how perf
coverage rots), and the failing summary names every such metric so
the CI log says *which* counter disappeared, not just that one did.

Exit status: 0 all metrics within tolerance, 1 regression or a
metric missing from the current run, 2 usage/IO error.

--self-test runs the comparison logic against built-in fixtures and
exits 0/1; ctest invokes it so the gate that guards the benches is
itself guarded.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {k: v for k, v in data.items() if isinstance(v, (int, float))}


def compare(base, cur, tolerance):
    """Return (failures, missing, lines): regression count, the names
    of baseline metrics absent from the current run, and the report
    lines to print."""
    failures = 0
    missing = []
    lines = []
    width = max(len(k) for k in base)
    for key in sorted(base):
        want = base[key]
        got = cur.get(key)
        if got is None:
            lines.append(f"FAIL {key:<{width}}  missing from current run")
            missing.append(key)
            failures += 1
            continue
        floor = want * (1.0 - tolerance)
        change = (got - want) / want if want else 0.0
        verdict = "ok  " if got >= floor else "FAIL"
        lines.append(f"{verdict} {key:<{width}}  baseline {want:>12.4g}"
                     f"  current {got:>12.4g}  ({change:+.1%})")
        if got is not None and got < floor:
            failures += 1
    for key in sorted(set(cur) - set(base)):
        lines.append(f"note {key}: not in baseline (new metric?)")
    return failures, missing, lines


def self_test():
    base = {"throughput": 100.0, "speedup": 2.0}

    fails, missing, _ = compare(base, dict(base), 0.30)
    assert fails == 0 and not missing, "identical runs must pass"

    fails, missing, _ = compare(base, {"throughput": 65.0,
                                       "speedup": 2.0}, 0.30)
    assert fails == 1 and not missing, "35% drop must fail at 30%"

    fails, missing, _ = compare(base, {"throughput": 75.0,
                                       "speedup": 2.0}, 0.30)
    assert fails == 0, "25% drop must pass at 30%"

    fails, missing, lines = compare(base, {"speedup": 2.0}, 0.30)
    assert fails == 1 and missing == ["throughput"], \
        "a dropped metric must fail and be named"
    assert any("throughput" in l and "missing" in l for l in lines), \
        "the report must name the missing metric"

    fails, missing, _ = compare(base, {}, 0.30)
    assert fails == 2 and sorted(missing) == ["speedup", "throughput"], \
        "an empty run must name every missing metric"

    print("self-test: all checks passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?",
                    help="checked-in baseline JSON")
    ap.add_argument("current", nargs="?",
                    help="freshly produced bench JSON")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression (default 0.30 = 30%%)",
    )
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in fixture checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("baseline and current are required (or --self-test)")

    base = load(args.baseline)
    cur = load(args.current)
    if not base:
        print(f"error: no numeric metrics in {args.baseline}",
              file=sys.stderr)
        return 2

    failures, missing, lines = compare(base, cur, args.tolerance)
    for line in lines:
        print(line)

    if failures:
        if missing:
            print(f"\nmissing metric(s): {', '.join(missing)}")
        print(f"\n{failures} metric(s) regressed beyond "
              f"{args.tolerance:.0%} of baseline or went missing")
        return 1
    print(f"\nall {len(base)} metrics within {args.tolerance:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
