#!/usr/bin/env bash
# Build, test, and regenerate every table and figure of the paper.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
(for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        echo "===== $(basename "$b") ====="
        "$b"
        echo
    fi
done) 2>&1 | tee bench_output.txt
echo "done: $(grep -c PASS bench_output.txt) shape checks passed,"\
     "$(grep -c FAIL bench_output.txt || true) failed"
