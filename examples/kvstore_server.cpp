/**
 * @file
 * Example: a Redis-style server that migrates between ISAs while
 * serving — the paper's §9.2.8 scenario as a library user would
 * write it. The server starts on the x86 kernel, builds its
 * database, migrates to the AArch64 kernel "during the time_event",
 * and keeps serving every operation class.
 */

#include <cstdio>

#include "stramash/sched/scheduler.hh"
#include "stramash/workloads/kvstore.hh"

using namespace stramash;

int
main()
{
    setQuiet(true);

    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false; // functional run, as in §9.2.8
    System sys(cfg);

    // Scheduler-driven spawn: the server asks for the x86 kernel;
    // the explicit migrateToNext() calls below stay, because the
    // mid-service migration is the point of the demo.
    SchedConfig sc;
    sc.policy = PlacementPolicy::IsaAffinity;
    Scheduler sched(sys, sc);
    PlacementHints hints;
    hints.preferIsa = IsaType::X86_64;
    App server(sys, hints);
    KvStore store(server, 256, 1024);

    std::printf("kv-store server: booting on %s...\n",
                isaName(sys.kernel(server.where()).isa()));
    store.populate();

    // Serve a warm-up batch locally.
    Rng rng(2026);
    Cycles local = store.measureRound(KvOp::Get, 500, rng);
    std::printf("  500 GETs on the origin ISA: %.2f Mcycles\n",
                static_cast<double>(local) / 1e6);

    // The time_event fires: migrate to the other ISA mid-service.
    server.migrateToNext();
    std::printf("server migrated to %s (messages so far: %llu)\n",
                isaName(sys.kernel(server.where()).isa()),
                static_cast<unsigned long long>(sys.messagesSent()));

    // Keep serving every operation class from the other ISA.
    std::printf("  serving from the remote ISA:\n");
    for (KvOp op : allKvOps()) {
        Cycles c = store.measureRound(op, 500, rng);
        std::printf("    %-6s x500: %8.2f Mcycles\n", kvOpName(op),
                    static_cast<double>(c) / 1e6);
    }

    // Functional spot check: what we set is what we get, across the
    // migration boundary.
    std::vector<std::uint8_t> payload(1024, 0x5a);
    store.exec(KvOp::Set, 42, payload.data());
    server.migrateToNext(); // back home
    bool ok = store.getValue(42) == payload;
    std::printf("value round-trip across ISAs: %s\n",
                ok ? "consistent" : "INCONSISTENT");
    return ok ? 0 : 1;
}
