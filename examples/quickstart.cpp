/**
 * @file
 * Quickstart: stand up a fused-kernel system, run a migrating
 * application, and print what the OS and the machine observed.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "stramash/sched/scheduler.hh"

using namespace stramash;

namespace
{

void
runOnce(OsDesign design)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);

    // The scheduler owns placement: new tasks ask for an ISA instead
    // of hard-coding a node id.
    SchedConfig sc;
    sc.policy = PlacementPolicy::IsaAffinity;
    Scheduler sched(sys, sc);

    // A process is born on the x86 kernel...
    PlacementHints hints;
    hints.preferIsa = IsaType::X86_64;
    App app(sys, hints);
    Addr buf = app.mmap(1 << 20);

    // ...fills a buffer there...
    for (Addr a = 0; a < (1 << 20); a += 8)
        app.write<std::uint64_t>(buf + a, a * 3 + 1);

    // ...migrates to the AArch64 kernel (state transformation and
    // all), sums the buffer from the other ISA...
    app.migrateToNext();
    std::uint64_t sum = 0;
    for (Addr a = 0; a < (1 << 20); a += 8)
        sum += app.read<std::uint64_t>(buf + a);

    // ...writes the result, and migrates home.
    app.write<std::uint64_t>(buf, sum);
    app.migrateToNext();
    std::uint64_t check = app.read<std::uint64_t>(buf);

    std::printf("%-15s sum=%llu (read back on origin: %s)\n",
                osDesignName(design),
                static_cast<unsigned long long>(sum),
                check == sum ? "consistent" : "INCONSISTENT");
    std::printf("  messages sent:        %llu\n",
                static_cast<unsigned long long>(sys.messagesSent()));
    std::printf("  pages replicated:     %llu\n",
                static_cast<unsigned long long>(sys.replicatedPages()));
    std::printf("  x86 cycles:           %llu\n",
                static_cast<unsigned long long>(
                    sys.machine().node(0).cycles()));
    std::printf("  arm cycles:           %llu\n",
                static_cast<unsigned long long>(
                    sys.machine().node(1).cycles()));
    std::printf("  total runtime:        %llu cycles\n\n",
                static_cast<unsigned long long>(sys.runtime()));
}

} // namespace

int
main()
{
    std::printf("Stramash quickstart: one app, two ISAs, two OS "
                "designs\n\n");
    runOnce(OsDesign::MultipleKernel);
    runOnce(OsDesign::FusedKernel);
    return 0;
}
