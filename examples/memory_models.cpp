/**
 * @file
 * Example: explore the three hardware memory models (paper Fig. 3)
 * with one probe workload — where an access lands (local, remote,
 * CXL pool) and what that costs, under both OS designs.
 */

#include <cstdio>

#include "stramash/core/app.hh"
#include "stramash/workloads/microbench.hh"

using namespace stramash;

namespace
{

void
probeModel(MemoryModel model)
{
    std::printf("--- %s ---\n", memoryModelName(model));

    // Show the physical map itself.
    PhysMap map = PhysMap::paperDefault(model);
    for (const auto &r : map.regions()) {
        std::printf("  [%#11llx, %#11llx) %s\n",
                    static_cast<unsigned long long>(r.range.start),
                    static_cast<unsigned long long>(r.range.end),
                    r.sharedPool
                        ? "CXL shared pool"
                        : (r.homeNode == 0 ? "x86 DRAM"
                                           : "Arm DRAM"));
    }

    // And what the two OS designs make of it: a 4 MiB region written
    // at the origin, then read from the other ISA.
    for (OsDesign design :
         {OsDesign::MultipleKernel, OsDesign::FusedKernel}) {
        SystemConfig cfg;
        cfg.osDesign = design;
        cfg.memoryModel = model;
        cfg.transport = Transport::SharedMemory;
        System sys(cfg);
        Cycles c = runMemAccessCase(
            sys, MemAccessCase::RemoteAccessOrigin, 4 << 20);
        std::printf("  %-15s cross-ISA read of 4 MiB: %8.2f Mcycles "
                    "(%llu msgs)\n",
                    osDesignName(design),
                    static_cast<double>(c) / 1e6,
                    static_cast<unsigned long long>(
                        sys.messagesSent()));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("Stramash memory models (paper Figure 3)\n\n");
    probeModel(MemoryModel::Separated);
    probeModel(MemoryModel::Shared);
    probeModel(MemoryModel::FullyShared);
    return 0;
}
