/**
 * @file
 * Example: run an NPB benchmark and print the artifact-evaluation
 * style report (paper Appendix A.5) — per-node cache hit rates,
 * IPIs, local/remote memory hits, instructions, runtime — plus the
 * appendix's Fully-Shared runtime approximation.
 *
 * Usage: ae_report [is|cg|mg|ft]
 */

#include <iostream>

#include "stramash/core/ae_report.hh"
#include "stramash/workloads/npb.hh"

using namespace stramash;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string kernel = argc > 1 ? argv[1] : "cg";

    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);
    App app(sys, 0);

    NpbConfig ncfg;
    ncfg.iterations = 4;
    ncfg.problemBytes = 1 << 20;
    NpbResult r = makeNpbKernel(kernel)->run(app, ncfg);

    std::cout << "NPB '" << kernel << "' on Stramash (Shared model), "
              << (r.verified ? "verified" : "VERIFICATION FAILED")
              << "\n\n";
    printAeReport(std::cout, sys);

    std::cout << "\nFully Shared Runtime (appendix approximation) = "
              << approximateFullyShared(sys) << "\n";
    return r.verified ? 0 : 1;
}
