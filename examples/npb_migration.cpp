/**
 * @file
 * Example: run an NPB-derived workload under both OS designs and
 * watch the cost structure differ — the Table 3 story in one
 * program.
 *
 * Usage: npb_migration [is|cg|mg|ft] [problem_bytes] [iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "stramash/workloads/npb.hh"

using namespace stramash;

namespace
{

void
runDesign(OsDesign design, const std::string &kernel,
          const NpbConfig &ncfg)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);
    App app(sys, 0);

    NpbResult r = makeNpbKernel(kernel)->run(app, ncfg);

    std::printf("%-15s: runtime %8.2f Mcycles  messages %6llu  "
                "replicated %5llu  verified %s\n",
                osDesignName(design),
                static_cast<double>(sys.runtime()) / 1e6,
                static_cast<unsigned long long>(sys.messagesSent()),
                static_cast<unsigned long long>(
                    sys.replicatedPages()),
                r.verified ? "yes" : "NO");

    // Per-node detail.
    for (NodeId n = 0; n < sys.nodeCount(); ++n) {
        const Node &node = sys.machine().node(n);
        auto &cs = sys.machine().caches().nodeStats(n);
        std::printf("    node%u (%s): %llu inst, %llu cycles, "
                    "remote-mem hits %llu, IPIs %llu\n",
                    n, isaName(node.isa()),
                    static_cast<unsigned long long>(node.icount()),
                    static_cast<unsigned long long>(node.cycles()),
                    static_cast<unsigned long long>(
                        cs.value("remote_mem_hits") +
                        cs.value("remote_shared_mem_hits")),
                    static_cast<unsigned long long>(
                        sys.machine().ipisReceived(n)));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string kernel = argc > 1 ? argv[1] : "is";
    NpbConfig ncfg;
    ncfg.problemBytes =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 1 << 20;
    ncfg.iterations =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;

    std::printf("NPB '%s' (%llu bytes, %u procedures), migrating "
                "x86 <-> Arm each procedure\n\n",
                kernel.c_str(),
                static_cast<unsigned long long>(ncfg.problemBytes),
                ncfg.iterations);

    runDesign(OsDesign::MultipleKernel, kernel, ncfg);
    std::printf("\n");
    runDesign(OsDesign::FusedKernel, kernel, ncfg);
    return 0;
}
