/**
 * @file
 * Example: the fused-kernel services beyond the headline fault path —
 * whole-process migration (§5), data packing in contiguous physical
 * memory (§5/§6), and the remote kernel-memory guard (the paper's
 * future-work security mechanism), all in one session.
 */

#include <cstdio>

#include "stramash/core/app.hh"
#include "stramash/fused/packing.hh"

using namespace stramash;

int
main()
{
    setQuiet(true);

    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.remoteGuard = GuardMode::Enforce; // MPU-style enforcement
    System sys(cfg);

    App app(sys, 0);
    Addr buf = app.mmap(32 * pageSize);
    // Interleave with a second region so frames scatter.
    Addr other = app.mmap(32 * pageSize);
    for (int i = 0; i < 32; ++i) {
        app.write<std::uint64_t>(buf + Addr(i) * pageSize, i * 3 + 1);
        app.write<std::uint64_t>(other + Addr(i) * pageSize, 0);
    }

    // --- data packing -------------------------------------------------
    KernelInstance &k0 = sys.kernel(0);
    Task &t0 = k0.task(app.pid());
    std::printf("before packing: VMA physically contiguous? %s\n",
                vmaIsPacked(k0, t0, buf) ? "yes" : "no");
    auto pack = packVmaContiguous(k0, t0, buf);
    if (pack) {
        std::printf("packed %llu pages into [%#llx, %#llx) — "
                    "contiguous? %s\n",
                    static_cast<unsigned long long>(pack->pagesMoved),
                    static_cast<unsigned long long>(pack->base),
                    static_cast<unsigned long long>(pack->base +
                                                    pack->bytes),
                    vmaIsPacked(k0, t0, buf) ? "yes" : "no");
    }

    // --- whole-process migration ---------------------------------------
    std::printf("\nprocess-migrating pid %u to the %s kernel...\n",
                app.pid(), isaName(sys.kernel(1).isa()));
    sys.migrateProcess(app.pid(), 1);
    std::printf("now origin=%u, data intact: %s, messages used: %llu\n",
                sys.kernel(1).task(app.pid()).origin,
                app.read<std::uint64_t>(buf + 5 * pageSize) == 16
                    ? "yes"
                    : "NO",
                static_cast<unsigned long long>(sys.messagesSent()));

    // --- the guard ------------------------------------------------------
    std::printf("\nremote kernel-memory guard: mode=%s, "
                "legit accesses checked=%llu, violations=%llu\n",
                guardModeName(sys.remoteGuard().mode()),
                static_cast<unsigned long long>(
                    sys.remoteGuard().checked()),
                static_cast<unsigned long long>(
                    sys.remoteGuard().violations()));
    std::printf("node0 exposes %llu KiB of kernel memory remotely "
                "(data region + page-table frames)\n",
                static_cast<unsigned long long>(
                    sys.remoteGuard().exposedBytes(0) >> 10));
    return 0;
}
